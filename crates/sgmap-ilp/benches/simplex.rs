//! Micro-benchmarks of the LP cores: the dense two-phase tableau vs the
//! revised bounded-variable simplex, the sparse-LU vs dense-inverse basis
//! backends on a ≥1000-row model, presolve on vs off, and cold solves vs
//! warm-started dual reoptimisation after a single branch-style bound
//! tightening — the exact access pattern of the branch-and-bound mapper.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sgmap_ilp::simplex::VarBound;
use sgmap_ilp::{
    dense, simplex, BasisBackend, LpSolver, Model, ObjectiveSense, Solver, SolverOptions, VarId,
};

/// A mapper-shaped model: minimise the makespan `t` of `p` partitions on
/// `g` GPUs with per-link communication rows — the same min-max structure
/// `map_ilp` emits, sized like a mid-sized application.
fn mapper_model(p: usize, g: usize) -> (Model, Vec<Vec<VarId>>) {
    let mut m = Model::new(ObjectiveSense::Minimize);
    let t = m.add_continuous("t", 1.0);
    let mut n: Vec<Vec<VarId>> = Vec::with_capacity(p);
    for i in 0..p {
        n.push(
            (0..g)
                .map(|j| m.add_binary(format!("n_{i}_{j}"), 0.0))
                .collect(),
        );
    }
    for ni in &n {
        m.add_constraint_eq(ni.iter().map(|&v| (v, 1.0)).collect(), 1.0);
    }
    // Deterministic pseudo-random workloads.
    let work = |i: usize| 3.0 + ((i * 7919) % 13) as f64;
    for j in 0..g {
        let mut terms: Vec<(VarId, f64)> = n
            .iter()
            .enumerate()
            .map(|(i, ni)| (ni[j], work(i)))
            .collect();
        terms.push((t, -1.0));
        m.add_constraint_le(terms, 0.0);
    }
    // Chain-communication rows: an x-variable per edge per "link", lower
    // bounded by the crossing indicator, its volume charged against t.
    for l in 0..2 * (g - 1) {
        let mut load: Vec<(VarId, f64)> = Vec::new();
        for e in 0..p - 1 {
            let x = m.add_continuous(format!("x_{e}_{l}"), 0.0);
            m.set_bounds(x, 0.0, 1.0);
            let (a, b) = (l / 2, l / 2 + 1);
            m.add_constraint_le(vec![(n[e][a], 1.0), (n[e + 1][b], 1.0), (x, -1.0)], 1.0);
            load.push((x, 64.0 + ((e * 31) % 5) as f64 * 16.0));
        }
        let d = m.add_continuous(format!("d_{l}"), 0.0);
        load.push((d, -1.0));
        m.add_constraint_le(load, 0.0);
        m.add_constraint_le(vec![(d, 1.0 / 512.0), (t, -1.0)], 0.0);
    }
    let total: f64 = (0..p).map(work).sum();
    m.set_bounds(t, total / g as f64, f64::INFINITY);
    (m, n)
}

fn bench_lp_cores(c: &mut Criterion) {
    let (model, n) = mapper_model(16, 4);
    let branch = [VarBound {
        var: n[3][1].index(),
        lo: 1.0,
        hi: 1.0,
    }];

    c.bench_function("lp/dense/mapper16x4", |b| {
        b.iter(|| dense::solve_lp(black_box(&model), &[]).unwrap())
    });
    c.bench_function("lp/revised-cold/mapper16x4", |b| {
        b.iter(|| simplex::solve_lp(black_box(&model), &[]).unwrap())
    });
    // Warm path: solve once cold, then time the dual reoptimisation after a
    // single bound tightening (alternating with the relaxation so every
    // iteration really re-solves).
    c.bench_function("lp/revised-warm/mapper16x4", |b| {
        let mut solver = LpSolver::new(&model).unwrap();
        solver.solve(&[]).unwrap();
        b.iter(|| {
            solver.solve(black_box(&branch)).unwrap();
            solver.solve(&[]).unwrap()
        })
    });
}

/// Sparse-LU vs dense-inverse basis backends on a mapper model with >1400
/// rows — the scale where maintaining an explicit m×m inverse stops being
/// viable. Cold solves factor from scratch; the warm pair reoptimises after
/// one branch-style bound flip-flop, the branch-and-bound access pattern.
fn bench_basis_backends(c: &mut Criterion) {
    let (model, n) = mapper_model(200, 4);
    let branch = [VarBound {
        var: n[7][2].index(),
        lo: 1.0,
        hi: 1.0,
    }];
    let mut group = c.benchmark_group("lp-1400row");
    group.sample_size(10);
    group.bench_function("sparse-lu-cold/mapper200x4", |b| {
        b.iter(|| {
            LpSolver::with_backend(black_box(&model), BasisBackend::SparseLu)
                .unwrap()
                .solve(&[])
                .unwrap()
        })
    });
    group.bench_function("dense-inverse-cold/mapper200x4", |b| {
        b.iter(|| {
            LpSolver::with_backend(black_box(&model), BasisBackend::DenseInverse)
                .unwrap()
                .solve(&[])
                .unwrap()
        })
    });
    group.bench_function("sparse-lu-warm/mapper200x4", |b| {
        let mut solver = LpSolver::with_backend(&model, BasisBackend::SparseLu).unwrap();
        solver.solve(&[]).unwrap();
        b.iter(|| {
            solver.solve(black_box(&branch)).unwrap();
            solver.solve(&[]).unwrap()
        })
    });
    group.bench_function("dense-inverse-warm/mapper200x4", |b| {
        let mut solver = LpSolver::with_backend(&model, BasisBackend::DenseInverse).unwrap();
        solver.solve(&[]).unwrap();
        b.iter(|| {
            solver.solve(black_box(&branch)).unwrap();
            solver.solve(&[]).unwrap()
        })
    });
    group.finish();
}

fn bench_bb(c: &mut Criterion) {
    let (model, _) = mapper_model(12, 2);
    c.bench_function("ilp/bb-warm-started/mapper12x2", |b| {
        b.iter(|| Solver::new().solve(black_box(&model)).unwrap())
    });
    c.bench_function("ilp/bb-no-presolve/mapper12x2", |b| {
        let opts = SolverOptions {
            presolve: false,
            ..SolverOptions::default()
        };
        b.iter(|| {
            Solver::with_options(opts.clone())
                .solve(black_box(&model))
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_lp_cores, bench_basis_backends, bench_bb);
criterion_main!(benches);
