//! Error type for the LP/ILP solver.

use std::fmt;

/// Errors produced while building or solving a model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IlpError {
    /// The model references a variable id that does not belong to it.
    UnknownVariable(usize),
    /// The linear program is infeasible (phase-1 simplex left artificial
    /// variables in the basis at a positive level).
    Infeasible,
    /// The linear program is unbounded in the optimisation direction.
    Unbounded,
    /// No integer-feasible solution was found within the node/time budget.
    NoIntegerSolution,
    /// The model has no variables.
    EmptyModel,
    /// A numerical problem occurred (e.g. a pivot element vanished).
    Numerical(&'static str),
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::UnknownVariable(i) => write!(f, "unknown variable id {i}"),
            IlpError::Infeasible => write!(f, "model is infeasible"),
            IlpError::Unbounded => write!(f, "model is unbounded"),
            IlpError::NoIntegerSolution => {
                write!(f, "no integer-feasible solution found within the budget")
            }
            IlpError::EmptyModel => write!(f, "model has no variables"),
            IlpError::Numerical(msg) => write!(f, "numerical difficulty: {msg}"),
        }
    }
}

impl std::error::Error for IlpError {}
