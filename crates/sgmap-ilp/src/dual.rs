//! Bounded-variable dual simplex — the warm-start engine.
//!
//! Starts from a dual-feasible basis (any optimal parent basis after the
//! nonbasic-state remap in [`LpWorkspace::solve`]) whose basic values may
//! violate the new bounds, and restores primal feasibility while keeping the
//! reduced costs sign-consistent.
//!
//! Each iteration:
//!
//! 1. picks the leaving row by **devex pricing** — the violated basic with
//!    the largest `violation²/γ_i` reference-weight score
//!    ([`crate::pricing::DevexWeights`]) — instead of raw most-violated,
//! 2. computes the pivot row `ρ = e_r'B⁻¹` by one btran and `α_j = ρ·a_j`,
//! 3. runs the **bound-flipping ratio test** (longest-step rule): the dual
//!    ratio-test breakpoints are sorted by ratio, and *boxed* candidates
//!    strictly below the blocking breakpoint flip to their opposite bound —
//!    absorbing part of the row's infeasibility without a pivot — while the
//!    entering variable is the largest-|α| candidate of the blocking tier
//!    (the stable pivot, decisive on degenerate all-zero-ratio rows),
//! 4. pivots, updates the reduced costs incrementally from the pivot row
//!    (`d ← d − (d_q/α_q)·α`), applies the accumulated flips to `xb` with a
//!    single ftran, and updates the devex weights.
//!
//! Selection rules are deterministic: highest devex score with lowest basic
//! variable index on ties, breakpoints ordered by `(ratio, column index)`,
//! and Bland-style lowest-index selection (no flips) past the stall
//! threshold.

use std::time::Instant;

use crate::basis::VarState;
use crate::workspace::{LoopEnd, LpWorkspace, PIVOT_TOL, PRIMAL_TOL, STABLE_PIVOT_REL};

/// Tolerance that groups dual ratio-test breakpoints into one tier: ratios
/// (and |α| magnitudes) closer than this are treated as ties.
const RATIO_TIE: f64 = 1e-12;

impl LpWorkspace {
    /// Runs the dual simplex to primal feasibility. Expects `self.d` to hold
    /// the reduced costs of the current basis (see
    /// [`LpWorkspace::compute_reduced_costs`]).
    pub(crate) fn dual_simplex(&mut self, deadline: Option<Instant>) -> LoopEnd {
        let m = self.cols.m;
        let n_total = self.cols.n_total();
        let cap = self.iteration_cap();
        let bland_after = self.bland_threshold();
        self.devex.reset(m);
        let mut breakpoints: Vec<(f64, u32)> = Vec::new();
        let mut flips: Vec<u32> = Vec::new();

        for iter in 0..cap {
            if Self::past_deadline(deadline) {
                return LoopEnd::TimeLimit;
            }
            if self.basis.wants_refactor() {
                if !self.refactor_and_sync() {
                    return LoopEnd::Stalled;
                }
                self.compute_reduced_costs();
            }
            let use_bland = iter > bland_after;

            // Leaving row: the violated basic with the best devex score
            // (plain worst violation under Bland's rule).
            let mut leaving: Option<(usize, f64, bool)> = None; // (row, viol, below)
            let mut leaving_bv = usize::MAX;
            let mut best_score = 0.0f64;
            for i in 0..m {
                let bv = self.basis.basic[i] as usize;
                let v = self.xb[i];
                let (viol, below) = if v < self.lo[bv] - PRIMAL_TOL {
                    (self.lo[bv] - v, true)
                } else if v > self.hi[bv] + PRIMAL_TOL {
                    (v - self.hi[bv], false)
                } else {
                    continue;
                };
                let score = self.devex.score(i, viol);
                let take = match leaving {
                    None => true,
                    Some(_) if use_bland => bv < leaving_bv,
                    Some(_) => {
                        score > best_score + 1e-12
                            || (score > best_score - 1e-12 && bv < leaving_bv)
                    }
                };
                if take {
                    leaving = Some((i, viol, below));
                    leaving_bv = bv;
                    best_score = score;
                }
            }
            let (r, viol, below) = match leaving {
                Some(l) => l,
                None => return LoopEnd::Done, // primal feasible: optimal
            };

            // Pivot row of the tableau: α_j = ρ·a_j with ρ = e_r'B⁻¹.
            let mut rho = std::mem::take(&mut self.rho);
            self.basis.btran_unit(r, &mut rho);
            let mut alpha = std::mem::take(&mut self.alpha);
            alpha.clear();
            alpha.resize(n_total, 0.0);
            // Collect the dual ratio-test breakpoints: columns that move the
            // leaving variable towards its violated bound, ordered by the
            // ratio at which their reduced cost hits zero.
            breakpoints.clear();
            let mut bland_entering: Option<usize> = None;
            for (j, slot) in alpha.iter_mut().enumerate() {
                match self.basis.state[j] {
                    VarState::Basic(_) => continue,
                    _ if self.lo[j] == self.hi[j] => continue, // fixed
                    _ => {}
                }
                let a = self.cols.dot_col(&rho, j);
                *slot = a;
                if a.abs() <= PIVOT_TOL {
                    continue;
                }
                let eligible = match (below, self.basis.state[j]) {
                    (true, VarState::AtLower) => a < 0.0,
                    (true, VarState::AtUpper) => a > 0.0,
                    (false, VarState::AtLower) => a > 0.0,
                    (false, VarState::AtUpper) => a < 0.0,
                    (_, VarState::Basic(_)) => false,
                };
                if !eligible {
                    continue;
                }
                if use_bland {
                    if bland_entering.is_none() {
                        bland_entering = Some(j);
                    }
                    continue;
                }
                breakpoints.push((self.d[j].abs() / a.abs(), j as u32));
            }
            self.rho = rho;

            // Bound-flipping ratio test: walk the breakpoints in ratio
            // order; a boxed candidate whose whole step still leaves the row
            // infeasible absorbs it by flipping to its other bound, the
            // first blocking breakpoint sets the dual step. Only candidates
            // *strictly* below the step actually flip — their reduced costs
            // cross zero, so staying put would break dual feasibility;
            // candidates at the step land on `d = 0` and stay. The entering
            // variable is the largest-|α| member of the blocking tier
            // (ratios within `RATIO_TIE` of the step): on the massively
            // degenerate mapper LPs every ratio is zero, and a tiny pivot
            // there means a huge primal swing that trades one violation for
            // several new ones.
            flips.clear();
            let entering = if use_bland {
                bland_entering
            } else {
                breakpoints.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                let mut residual = viol;
                let mut block = None;
                for (k, &(_, ju)) in breakpoints.iter().enumerate() {
                    let j = ju as usize;
                    let span = self.hi[j] - self.lo[j];
                    let gain = alpha[j].abs() * span;
                    if span.is_finite() && residual - gain > PRIMAL_TOL {
                        residual -= gain;
                    } else {
                        block = Some(k);
                        break;
                    }
                }
                block.map(|k| {
                    let theta = breakpoints[k].0;
                    let mut q = breakpoints[k].1 as usize;
                    for &(ratio, ju) in &breakpoints[k + 1..] {
                        if ratio > theta + RATIO_TIE {
                            break;
                        }
                        let j = ju as usize;
                        if alpha[j].abs() > alpha[q].abs() + RATIO_TIE {
                            q = j;
                        }
                    }
                    for &(ratio, ju) in &breakpoints[..k] {
                        if ratio < theta - RATIO_TIE && ju as usize != q {
                            flips.push(ju);
                        }
                    }
                    q
                })
            };
            let q = match entering {
                Some(q) => q,
                // Dual ray: the violated row cannot be repaired even with
                // every boxed candidate pushed to its far bound.
                None => {
                    self.alpha = alpha;
                    return LoopEnd::Infeasible;
                }
            };

            let mut w = std::mem::take(&mut self.w);
            self.basis.ftran(&self.cols, q, &mut w);
            let stable = w[r].abs() > PIVOT_TOL && {
                // A pivot that is tiny relative to its direction is only
                // trustworthy from fresh factors; through an eta file it may
                // be drift masking a true zero, and accepting it would make
                // the recorded basis singular.
                self.basis.is_fresh() || {
                    let winf = w.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
                    w[r].abs() >= STABLE_PIVOT_REL * winf
                }
            };
            if !stable {
                self.w = w;
                self.alpha = alpha;
                if self.basis.is_fresh() {
                    // Fresh factors agree the pivot is unusable: the warm
                    // path is numerically lost, restart cold.
                    return LoopEnd::Stalled;
                }
                // Drifted factors: resynchronise and retry the iteration.
                if !self.refactor_and_sync() {
                    return LoopEnd::Stalled;
                }
                self.compute_reduced_costs();
                continue;
            }

            // Dual update of the reduced costs from the pivot row. Flipped
            // columns are updated too: their reduced cost crosses zero,
            // matching the bound they land on.
            let theta_d = self.d[q] / alpha[q];
            for (j, &a) in alpha.iter().enumerate() {
                if j == q || a == 0.0 {
                    continue;
                }
                if let VarState::Basic(_) = self.basis.state[j] {
                    continue;
                }
                self.d[j] -= theta_d * a;
            }

            // Primal update: the leaving variable lands on its violated
            // bound, the entering one moves off its bound by the matching
            // step.
            let leaving = self.basis.basic[r] as usize;
            let bound = if below {
                self.lo[leaving]
            } else {
                self.hi[leaving]
            };
            let entering_from = self.nb_value(q);

            // Apply the accumulated bound flips with a single ftran of the
            // summed flip directions against the *pre-pivot* basis:
            // xb ← xb − B⁻¹·(Σ δ_j a_j).
            if !flips.is_empty() {
                let mut acc = std::mem::take(&mut self.y);
                acc.clear();
                acc.resize(m, 0.0);
                for &ju in &flips {
                    let j = ju as usize;
                    let (delta, to) = match self.basis.state[j] {
                        VarState::AtLower => (self.hi[j] - self.lo[j], VarState::AtUpper),
                        VarState::AtUpper => (self.lo[j] - self.hi[j], VarState::AtLower),
                        VarState::Basic(_) => unreachable!("flip candidates are nonbasic"),
                    };
                    self.basis.state[j] = to;
                    match self.cols.logical_row(j) {
                        Some(row) => acc[row] += delta,
                        None => {
                            for (row, a) in self.cols.col(j) {
                                acc[row] += delta * a;
                            }
                        }
                    }
                }
                let mut shift = std::mem::take(&mut self.rho);
                self.basis.ftran_dense(&acc, &mut shift);
                for (i, &s) in shift.iter().enumerate() {
                    if s != 0.0 {
                        self.xb[i] -= s;
                    }
                }
                self.y = acc;
                self.rho = shift;
                self.stats.bound_flips += flips.len() as u64;
                self.stats.iterations += flips.len() as u64;
            }

            if !self.basis.pivot(m, r, q, &w) {
                // Unreachable in practice (the |w_r| > PIVOT_TOL check above
                // subsumes the factor update's tolerance); reduced costs and
                // flip states are already mutated, so the only safe recovery
                // is the caller's cold restart.
                self.w = w;
                self.alpha = alpha;
                return LoopEnd::Stalled;
            }
            self.devex.update(r, &w);

            let t_p = (self.xb[r] - bound) / w[r];
            let entering_value = entering_from + t_p;
            for (i, &wi) in w.iter().enumerate() {
                if i != r && wi != 0.0 {
                    self.xb[i] -= t_p * wi;
                }
            }
            self.xb[r] = entering_value;
            self.basis.state[leaving] = if below {
                VarState::AtLower
            } else {
                VarState::AtUpper
            };
            self.d[leaving] = -theta_d;
            self.d[q] = 0.0;
            self.stats.iterations += 1;
            self.w = w;
            self.alpha = alpha;
        }
        LoopEnd::Stalled
    }
}
