//! Bounded-variable dual simplex — the warm-start engine.
//!
//! Starts from a dual-feasible basis (any optimal parent basis after the
//! nonbasic-state remap in [`LpWorkspace::solve`]) whose basic values may
//! violate the new bounds, and restores primal feasibility while keeping the
//! reduced costs sign-consistent. Each iteration picks the most-violated
//! basic variable to leave towards its violated bound, and the entering
//! column by the dual ratio test over the pivot row. Reduced costs are
//! maintained incrementally from the pivot row (`d ← d − (d_q/α_q)·α`),
//! which the periodic refactorisation resynchronises from scratch.
//!
//! Selection rules are deterministic: most-violated row with lowest basic
//! variable index on ties, entering by smallest |d/α| with larger |α| then
//! lowest index on ties, and Bland-style lowest-index selection past the
//! stall threshold.

use std::time::Instant;

use crate::basis::VarState;
use crate::workspace::{LoopEnd, LpWorkspace, PIVOT_TOL, PRIMAL_TOL};

impl LpWorkspace {
    /// Runs the dual simplex to primal feasibility. Expects `self.d` to hold
    /// the reduced costs of the current basis (see
    /// [`LpWorkspace::compute_reduced_costs`]).
    pub(crate) fn dual_simplex(&mut self, deadline: Option<Instant>) -> LoopEnd {
        let m = self.cols.m;
        let n_total = self.cols.n_total();
        let cap = self.iteration_cap();
        let bland_after = self.bland_threshold();

        for iter in 0..cap {
            if Self::past_deadline(deadline) {
                return LoopEnd::TimeLimit;
            }
            if self.basis.wants_refactor() {
                if !self.refactor_and_sync() {
                    return LoopEnd::Stalled;
                }
                self.compute_reduced_costs();
            }
            let use_bland = iter > bland_after;

            // Leaving row: the worst bound violation among the basics.
            let mut leaving: Option<(usize, f64, bool)> = None; // (row, viol, below)
            let mut leaving_bv = usize::MAX;
            for i in 0..m {
                let bv = self.basis.basic[i] as usize;
                let v = self.xb[i];
                let (viol, below) = if v < self.lo[bv] - PRIMAL_TOL {
                    (self.lo[bv] - v, true)
                } else if v > self.hi[bv] + PRIMAL_TOL {
                    (v - self.hi[bv], false)
                } else {
                    continue;
                };
                let take = match leaving {
                    None => true,
                    Some(_) if use_bland => bv < leaving_bv,
                    Some((_, best, _)) => {
                        viol > best + 1e-12 || (viol > best - 1e-12 && bv < leaving_bv)
                    }
                };
                if take {
                    leaving = Some((i, viol, below));
                    leaving_bv = bv;
                }
            }
            let (r, _viol, below) = match leaving {
                Some(l) => l,
                None => return LoopEnd::Done, // primal feasible: optimal
            };

            // Pivot row of the tableau: α_j = (row r of B⁻¹)·a_j.
            let rho = self.basis.row(r);
            let mut alpha = std::mem::take(&mut self.alpha);
            alpha.clear();
            alpha.resize(n_total, 0.0);
            // Dual ratio test: among columns that move the leaving variable
            // towards its violated bound, the one whose reduced cost hits
            // zero first keeps every d sign-consistent.
            let mut entering: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            let mut best_alpha = 0.0f64;
            for (j, slot) in alpha.iter_mut().enumerate() {
                match self.basis.state[j] {
                    VarState::Basic(_) => continue,
                    _ if self.lo[j] == self.hi[j] => continue, // fixed
                    _ => {}
                }
                let a = self.cols.dot_col(rho, j);
                *slot = a;
                if a.abs() <= PIVOT_TOL {
                    continue;
                }
                let eligible = match (below, self.basis.state[j]) {
                    (true, VarState::AtLower) => a < 0.0,
                    (true, VarState::AtUpper) => a > 0.0,
                    (false, VarState::AtLower) => a > 0.0,
                    (false, VarState::AtUpper) => a < 0.0,
                    (_, VarState::Basic(_)) => false,
                };
                if !eligible {
                    continue;
                }
                if use_bland {
                    if entering.is_none() {
                        entering = Some(j);
                        best_alpha = a;
                    }
                    continue;
                }
                let ratio = self.d[j].abs() / a.abs();
                let take = ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12 && a.abs() > best_alpha.abs() + 1e-12);
                if take {
                    best_ratio = ratio;
                    best_alpha = a;
                    entering = Some(j);
                }
            }
            let q = match entering {
                Some(q) => q,
                // Dual ray: the violated row cannot be repaired.
                None => return LoopEnd::Infeasible,
            };

            let mut w = std::mem::take(&mut self.w);
            self.basis.ftran(&self.cols, q, &mut w);
            if w[r].abs() <= PIVOT_TOL {
                // Drifted inverse: resynchronise and retry the iteration.
                self.w = w;
                self.alpha = alpha;
                if !self.refactor_and_sync() {
                    return LoopEnd::Stalled;
                }
                self.compute_reduced_costs();
                continue;
            }

            // Dual update of the reduced costs from the pivot row.
            let theta_d = self.d[q] / alpha[q];
            for (j, &a) in alpha.iter().enumerate() {
                if j == q || a == 0.0 {
                    continue;
                }
                if let VarState::Basic(_) = self.basis.state[j] {
                    continue;
                }
                self.d[j] -= theta_d * a;
            }

            // Primal update: the leaving variable lands on its violated
            // bound, the entering one moves off its bound by the matching
            // step.
            let leaving = self.basis.basic[r] as usize;
            let bound = if below {
                self.lo[leaving]
            } else {
                self.hi[leaving]
            };
            let t_p = (self.xb[r] - bound) / w[r];
            let entering_value = self.nb_value(q) + t_p;
            if !self.basis.pivot(m, r, q, &w) {
                self.w = w;
                self.alpha = alpha;
                if !self.refactor_and_sync() {
                    return LoopEnd::Stalled;
                }
                self.compute_reduced_costs();
                continue;
            }
            for (i, &wi) in w.iter().enumerate() {
                if i != r && wi != 0.0 {
                    self.xb[i] -= t_p * wi;
                }
            }
            self.xb[r] = entering_value;
            self.basis.state[leaving] = if below {
                VarState::AtLower
            } else {
                VarState::AtUpper
            };
            self.d[leaving] = -theta_d;
            self.d[q] = 0.0;
            self.stats.iterations += 1;
            self.w = w;
            self.alpha = alpha;
        }
        LoopEnd::Stalled
    }
}
