//! Presolve: shrink a model before the constraint matrix is built.
//!
//! The mapper's ILP models carry a lot of structure a simplex never needs to
//! see: branch-fixed binaries, singleton rows that are really just bounds,
//! and rows/columns emptied by either. Presolve runs the classical cheap
//! reductions to a fixpoint:
//!
//! * **fixed-variable substitution** — a variable with `lo == hi` leaves the
//!   model; its contribution moves into the row right-hand sides and the
//!   objective offset,
//! * **singleton-row → bound conversion** — a row with one term becomes a
//!   native bound on its variable (with integral rounding of the tightened
//!   bounds for binaries, which can prove integer infeasibility early),
//! * **empty-row elimination** — a row with no terms left is a pure
//!   feasibility check on its right-hand side,
//! * **empty-column elimination** — a variable appearing in no row is fixed
//!   at its objective-best bound when that bound is finite (an infinite
//!   improving bound keeps the column, so the simplex itself certifies
//!   unboundedness exactly as it would without presolve).
//!
//! The result is a reduced [`Model`] plus a [`PresolveMap`] that restores
//! solutions back to the original variable space (*postsolve*). Everything
//! is deterministic: passes scan variables and rows in index order.

use crate::model::{ConstraintSense, Model, ObjectiveSense, VarKind};
use crate::simplex::TOL;

/// What presolve concluded about the model.
#[derive(Debug)]
pub(crate) enum Presolved {
    /// The reduced model plus the postsolve map. The reduced model may have
    /// zero variables left, in which case the fixed values *are* the unique
    /// solution.
    Reduced(PresolveMap),
    /// Presolve proved the model has no (integer-)feasible point.
    Infeasible,
}

/// The postsolve map from reduced variable space back to the original.
#[derive(Debug, Clone)]
pub(crate) struct PresolveMap {
    /// The reduced model (possibly with tightened bounds).
    pub(crate) model: Model,
    /// Original index of each reduced variable.
    pub(crate) var_map: Vec<usize>,
    /// Fixed value of each *removed* original variable (`None` = kept).
    pub(crate) fixed: Vec<Option<f64>>,
    /// Objective contribution of the removed variables.
    pub(crate) offset: f64,
    /// Rows eliminated (empty and singleton rows).
    pub(crate) removed_rows: usize,
    /// Columns eliminated (fixed and empty-column variables).
    pub(crate) removed_cols: usize,
}

impl PresolveMap {
    /// Maps a reduced-space solution back to the original variable space.
    pub(crate) fn restore(&self, reduced: &[f64]) -> Vec<f64> {
        debug_assert_eq!(reduced.len(), self.var_map.len());
        let mut values: Vec<f64> = self.fixed.iter().map(|f| f.unwrap_or(0.0)).collect();
        for (r, &orig) in self.var_map.iter().enumerate() {
            values[orig] = reduced[r];
        }
        values
    }
}

/// Runs the presolve reductions on `model`. `int_tol` is the integrality
/// tolerance used when a binary variable gets fixed or bound-tightened.
pub(crate) fn presolve(model: &Model, int_tol: f64) -> Presolved {
    let n = model.num_vars();
    let mut lo: Vec<f64> = model.vars.iter().map(|v| v.lo).collect();
    let mut hi: Vec<f64> = model.vars.iter().map(|v| v.hi).collect();
    let mut fixed: Vec<Option<f64>> = vec![None; n];

    // Working rows with per-row merged terms (duplicate variable mentions
    // collapse so a singleton row really has one variable).
    struct Row {
        terms: Vec<(usize, f64)>,
        sense: ConstraintSense,
        rhs: f64,
        alive: bool,
    }
    let mut rows: Vec<Row> = model
        .constraints
        .iter()
        .map(|c| {
            let mut terms: Vec<(usize, f64)> = Vec::with_capacity(c.terms.len());
            for &(v, coef) in &c.terms {
                terms.push((v.0, coef));
            }
            terms.sort_by_key(|&(v, _)| v);
            terms.dedup_by(|b, a| {
                if a.0 == b.0 {
                    a.1 += b.1;
                    true
                } else {
                    false
                }
            });
            terms.retain(|&(_, coef)| coef != 0.0);
            Row {
                terms,
                sense: c.sense,
                rhs: c.rhs,
                alive: true,
            }
        })
        .collect();
    let mut removed_rows = 0usize;

    // Fixes variable `j` at its (collapsed) lower bound, rejecting
    // fractional binaries.
    let fix = |j: usize, lo: &[f64], fixed: &mut [Option<f64>]| -> bool {
        let mut v = lo[j];
        if model.vars[j].kind == VarKind::Binary {
            let r = v.round();
            if (v - r).abs() > int_tol {
                return false; // fractional fixed binary: integer infeasible
            }
            v = r.clamp(0.0, 1.0);
        }
        fixed[j] = Some(v);
        true
    };

    loop {
        let mut changed = false;

        // Fixed-variable detection.
        for j in 0..n {
            if fixed[j].is_none() && lo[j] == hi[j] {
                if !fix(j, &lo, &mut fixed) {
                    return Presolved::Infeasible;
                }
                changed = true;
            }
        }

        // Row pass: substitute fixed variables, then eliminate empty and
        // singleton rows.
        for row in rows.iter_mut().filter(|r| r.alive) {
            let before = row.terms.len();
            let mut rhs = row.rhs;
            row.terms.retain(|&(j, coef)| match fixed[j] {
                Some(v) => {
                    rhs -= coef * v;
                    false
                }
                None => true,
            });
            row.rhs = rhs;
            if row.terms.len() != before {
                changed = true;
            }
            match row.terms.len() {
                0 => {
                    let ok = match row.sense {
                        ConstraintSense::Le => rhs >= -TOL,
                        ConstraintSense::Ge => rhs <= TOL,
                        ConstraintSense::Eq => rhs.abs() <= TOL,
                    };
                    if !ok {
                        return Presolved::Infeasible;
                    }
                    row.alive = false;
                    removed_rows += 1;
                    changed = true;
                }
                1 => {
                    let (j, a) = row.terms[0];
                    let v = rhs / a;
                    let (mut nlo, mut nhi) = (lo[j], hi[j]);
                    match (row.sense, a > 0.0) {
                        (ConstraintSense::Eq, _) => {
                            nlo = nlo.max(v);
                            nhi = nhi.min(v);
                        }
                        (ConstraintSense::Le, true) | (ConstraintSense::Ge, false) => {
                            nhi = nhi.min(v);
                        }
                        (ConstraintSense::Le, false) | (ConstraintSense::Ge, true) => {
                            nlo = nlo.max(v);
                        }
                    }
                    if model.vars[j].kind == VarKind::Binary {
                        // Integral rounding of the tightened box.
                        nlo = (nlo - int_tol).ceil().max(0.0);
                        nhi = (nhi + int_tol).floor().min(1.0);
                    }
                    if nlo > nhi + TOL {
                        return Presolved::Infeasible;
                    }
                    if nhi < nlo {
                        nhi = nlo; // within tolerance: collapse, don't fail
                    }
                    lo[j] = nlo;
                    hi[j] = nhi;
                    row.alive = false;
                    removed_rows += 1;
                    changed = true;
                }
                _ => {}
            }
        }

        // Empty-column elimination: a live variable in no live row moves to
        // its objective-best bound when that bound is finite.
        let mut appears = vec![false; n];
        for row in rows.iter().filter(|r| r.alive) {
            for &(j, _) in &row.terms {
                appears[j] = true;
            }
        }
        for j in 0..n {
            if fixed[j].is_some() || appears[j] {
                continue;
            }
            let c = model.vars[j].objective;
            let toward_lo = match model.sense {
                ObjectiveSense::Minimize => c >= 0.0,
                ObjectiveSense::Maximize => c <= 0.0,
            };
            let best = if toward_lo { lo[j] } else { hi[j] };
            if best.is_finite() {
                lo[j] = best;
                hi[j] = best;
                if !fix(j, &lo, &mut fixed) {
                    return Presolved::Infeasible;
                }
                changed = true;
            }
            // An infinite improving bound stays in the model so the simplex
            // itself reports Unbounded/Infeasible exactly as without
            // presolve.
        }

        if !changed {
            break;
        }
    }

    // Assemble the reduced model.
    let mut var_map = Vec::new();
    let mut reduced_ix = vec![usize::MAX; n];
    let mut offset = 0.0;
    let mut reduced = Model::new(model.sense);
    for (j, var) in model.vars.iter().enumerate() {
        match fixed[j] {
            Some(v) => offset += var.objective * v,
            None => {
                reduced_ix[j] = var_map.len();
                var_map.push(j);
                let id = match var.kind {
                    VarKind::Continuous => reduced.add_continuous(var.name.clone(), var.objective),
                    VarKind::Binary => reduced.add_binary(var.name.clone(), var.objective),
                };
                reduced.set_bounds(id, lo[j], hi[j]);
            }
        }
    }
    for row in rows.iter().filter(|r| r.alive) {
        let terms: Vec<_> = row
            .terms
            .iter()
            .map(|&(j, coef)| (crate::model::VarId(reduced_ix[j]), coef))
            .collect();
        reduced.add_constraint(terms, row.sense, row.rhs);
    }
    let removed_cols = fixed.iter().filter(|f| f.is_some()).count();
    Presolved::Reduced(PresolveMap {
        model: reduced,
        var_map,
        fixed,
        offset,
        removed_rows,
        removed_cols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ObjectiveSense;

    fn map(p: Presolved) -> PresolveMap {
        match p {
            Presolved::Reduced(m) => m,
            Presolved::Infeasible => panic!("expected a reduced model"),
        }
    }

    #[test]
    fn fixed_variables_move_into_rhs_and_offset() {
        // min 2x + 3y, x fixed at 2 by bounds, x + y >= 5 → y >= 3.
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 2.0);
        let y = m.add_continuous("y", 3.0);
        m.set_bounds(x, 2.0, 2.0);
        m.add_constraint_ge(vec![(x, 1.0), (y, 1.0)], 5.0);
        let p = map(presolve(&m, 1e-6));
        // x is fixed by bounds; the singleton remainder (y >= 3) becomes a
        // bound; y is then an empty column fixed at its objective-best
        // (lower) bound. The whole model presolves away.
        assert_eq!(p.model.num_vars(), 0);
        assert_eq!(p.model.num_constraints(), 0);
        assert_eq!(p.offset, 4.0 + 9.0);
        assert_eq!(p.removed_rows, 1);
        assert_eq!(p.removed_cols, 2);
        assert_eq!(p.restore(&[]), vec![2.0, 3.0]);
    }

    #[test]
    fn singleton_rows_round_binary_bounds_to_integrality() {
        // 2b <= 1 for a binary forces b = 0.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let b = m.add_binary("b", 1.0);
        let c = m.add_binary("c", 1.0);
        m.add_constraint_le(vec![(b, 2.0)], 1.0);
        m.add_constraint_le(vec![(b, 1.0), (c, 1.0)], 2.0);
        let p = map(presolve(&m, 1e-6));
        // b got fixed at 0; c's row became a singleton (c <= 2 → no-op
        // bound) and was eliminated; c is then an empty column fixed at its
        // best bound 1.
        assert_eq!(p.model.num_vars(), 0);
        assert_eq!(p.restore(&[]), vec![0.0, 1.0]);
        assert_eq!(p.offset, 1.0);
    }

    #[test]
    fn conflicting_singletons_are_infeasible() {
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        m.add_constraint_ge(vec![(x, 1.0)], 4.0);
        m.add_constraint_le(vec![(x, 1.0)], 3.0);
        assert!(matches!(presolve(&m, 1e-6), Presolved::Infeasible));
    }

    #[test]
    fn fractional_forced_binary_is_integer_infeasible() {
        let mut m = Model::new(ObjectiveSense::Minimize);
        let b = m.add_binary("b", 1.0);
        m.add_constraint_eq(vec![(b, 2.0)], 1.0); // b = 0.5
        assert!(matches!(presolve(&m, 1e-6), Presolved::Infeasible));
    }

    #[test]
    fn empty_rows_check_feasibility() {
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        m.set_bounds(x, 1.0, 1.0);
        m.add_constraint_le(vec![(x, 1.0)], 0.5); // 1 <= 0.5 after substitution
        assert!(matches!(presolve(&m, 1e-6), Presolved::Infeasible));
    }

    #[test]
    fn empty_column_with_infinite_best_bound_is_kept() {
        // Maximising an unconstrained, unbounded variable: presolve must
        // leave it so the LP reports Unbounded itself.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_continuous("y", -1.0);
        m.add_constraint_le(vec![(y, 1.0), (x, 0.0)], 1.0);
        let p = map(presolve(&m, 1e-6));
        assert_eq!(p.model.num_vars(), 1, "x must survive presolve");
        assert_eq!(p.var_map, vec![0]);
    }

    #[test]
    fn duplicate_terms_merge_before_singleton_detection() {
        // x + x <= 4 is the singleton 2x <= 4 → hi = 2.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_continuous("y", 1.0);
        m.add_constraint_le(vec![(x, 1.0), (x, 1.0)], 4.0);
        m.add_constraint_le(vec![(x, 1.0), (y, 1.0)], 10.0);
        let p = map(presolve(&m, 1e-6));
        assert_eq!(p.model.num_constraints(), 1);
        assert_eq!(p.model.var_bounds(crate::model::VarId(0)), (0.0, 2.0));
    }
}
