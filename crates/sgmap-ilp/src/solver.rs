//! Branch-and-bound over the binary variables of a [`Model`].
//!
//! The model first runs through [`crate::presolve`] (fixed-variable
//! substitution, singleton-row → bound conversion, empty-row/column
//! elimination), and the search operates on the reduced model; solutions are
//! mapped back to the original variable space through the postsolve map.
//!
//! All nodes share one [`LpWorkspace`]: the root relaxation is solved cold
//! by the primal simplex, and every subsequent node — which only tightens
//! variable bounds — inherits the basis left behind by the previously solved
//! node and reoptimises with the bounded-variable dual simplex, typically in
//! a handful of pivots.
//!
//! The search is **budget-aware**: open nodes live in a best-bound priority
//! queue, while each branching also starts a depth-first *dive* on the
//! preferred (rounded) child so an early incumbent appears even under tiny
//! node budgets. When the node or wall-clock budget runs out, the best
//! remaining open bound yields a reported [`SolveStats::optimality_gap`]
//! alongside the best incumbent, so a truncated solve still says *how good*
//! its mapping is. The wall-clock budget is enforced *inside* the LP loops
//! too, so a single pathological reoptimisation cannot blow past
//! [`SolverOptions::time_limit`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use crate::error::IlpError;
use crate::model::{Model, ObjectiveSense};
use crate::presolve::{presolve, PresolveMap, Presolved};
use crate::simplex::{LpSolution, VarBound, TOL};
use crate::workspace::{LpOutcome, LpWorkspace};
use crate::Result;

/// How the search terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolutionStatus {
    /// The returned solution is proven optimal (possibly within
    /// [`SolverOptions::relative_gap`]).
    Optimal,
    /// The search hit its node or time budget; the returned solution is the
    /// best integer-feasible solution found so far.
    Feasible,
}

/// Counters describing the work a solve performed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Branch-and-bound nodes whose relaxation was (re)optimised.
    pub nodes: u64,
    /// Simplex iterations (pivots and bound flips) across all nodes.
    pub lp_iterations: u64,
    /// Node relaxations answered by warm-started dual reoptimisation.
    pub lp_warm_starts: u64,
    /// Node relaxations that ran the primal simplex from a cold basis.
    pub lp_cold_solves: u64,
    /// Basis refactorisations (periodic and stability-triggered).
    pub refactorizations: u64,
    /// Bound flips (primal flip steps and dual BFRT flips).
    pub bound_flips: u64,
    /// Constraint rows eliminated by presolve.
    pub presolve_removed_rows: u64,
    /// Variables eliminated by presolve.
    pub presolve_removed_cols: u64,
    /// Relative gap between the returned solution and the best remaining
    /// bound: `0.0` when optimality was proven, finite and positive when a
    /// budget-limited search still had open nodes (or a valid static bound),
    /// `f64::INFINITY` when no bound was available.
    pub optimality_gap: f64,
}

/// An integer-feasible solution of a [`Model`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Value of each variable, indexed by [`VarId::index`](crate::VarId::index).
    pub values: Vec<f64>,
    /// Objective value in the model's sense.
    pub objective: f64,
    /// Whether optimality was proven.
    pub status: SolutionStatus,
    /// Number of branch-and-bound nodes explored.
    pub nodes_explored: usize,
    /// LP-engine counters of this solve.
    pub stats: SolveStats,
}

impl Solution {
    /// Returns the rounded 0/1 value of a binary variable.
    pub fn binary_value(&self, var: crate::VarId) -> bool {
        self.values[var.index()] > 0.5
    }

    /// Returns the value of a variable.
    pub fn value(&self, var: crate::VarId) -> f64 {
        self.values[var.index()]
    }
}

/// Budget and behaviour knobs for the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Wall-clock limit for the whole solve, enforced both between nodes and
    /// inside long LP reoptimisations.
    pub time_limit: Duration,
    /// Relative optimality gap at which the search stops early with status
    /// [`SolutionStatus::Optimal`]. `0.0` (the default) disables the early
    /// stop: the search only ends when the tree is exhausted or a budget is
    /// hit.
    pub relative_gap: f64,
    /// Absolute tolerance for considering a relaxation value integral.
    pub integrality_tol: f64,
    /// Whether to run the presolve reductions before building the constraint
    /// matrix. On by default; mainly disabled by equivalence tests.
    pub presolve: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_nodes: 20_000,
            time_limit: Duration::from_secs(30),
            relative_gap: 0.0,
            integrality_tol: 1e-6,
            presolve: true,
        }
    }
}

/// Branch-and-bound solver for models with binary variables.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    options: SolverOptions,
    warm_start: Option<Vec<f64>>,
    trace: Option<std::sync::Arc<sgmap_trace::Collector>>,
}

/// An open node of the search tree. `bound` is the parent's LP objective in
/// the *original* model space — a valid bound on every solution below this
/// node — and `seq` is the insertion number that makes heap order total and
/// deterministic.
struct OpenNode {
    bounds: Vec<VarBound>,
    bound: f64,
    seq: u64,
}

/// Max-heap adapter: pops the open node with the best bound; ties pop the
/// oldest node first.
struct ByBound {
    node: OpenNode,
    /// Larger is better-to-explore: the bound negated for minimisation.
    score: f64,
}

impl PartialEq for ByBound {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for ByBound {}
impl PartialOrd for ByBound {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ByBound {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then(other.node.seq.cmp(&self.node.seq))
    }
}

impl Solver {
    /// Creates a solver with default options.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Creates a solver with the given options.
    pub fn with_options(options: SolverOptions) -> Self {
        Solver {
            options,
            warm_start: None,
            trace: None,
        }
    }

    /// Supplies an integer-feasible starting point used as the initial
    /// incumbent (it is validated and ignored if infeasible).
    pub fn warm_start(mut self, values: Vec<f64>) -> Self {
        self.warm_start = Some(values);
        self
    }

    /// Attaches a trace collector: the whole solve runs under an `ilp.solve`
    /// span, every branch-and-bound relaxation under an `ilp.node` span, and
    /// the [`SolveStats`] of each successful solve are accumulated into the
    /// `ilp.nodes` / `ilp.lp_iterations` / `ilp.lp_warm_starts` /
    /// `ilp.lp_cold_solves` / `ilp.refactorizations` / `ilp.bound_flips` /
    /// `ilp.presolve_removed_rows` counters. The collector is write-only: it
    /// cannot change the solution.
    pub fn with_trace(mut self, trace: Option<std::sync::Arc<sgmap_trace::Collector>>) -> Self {
        self.trace = trace;
        self
    }

    /// Solves `model` to (proven or budget-limited) optimality.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::Infeasible`] / [`IlpError::Unbounded`] when
    /// presolve or the root relaxation already fails, and
    /// [`IlpError::NoIntegerSolution`] when the budget is exhausted without
    /// any integer-feasible point.
    pub fn solve(&self, model: &Model) -> Result<Solution> {
        let _solve_span = sgmap_trace::span(self.trace.as_ref(), "ilp.solve");
        let result = self.solve_inner(model);
        if let Ok(s) = &result {
            let trace = self.trace.as_ref();
            sgmap_trace::add(trace, "ilp.nodes", s.stats.nodes);
            sgmap_trace::add(trace, "ilp.lp_iterations", s.stats.lp_iterations);
            sgmap_trace::add(trace, "ilp.lp_warm_starts", s.stats.lp_warm_starts);
            sgmap_trace::add(trace, "ilp.lp_cold_solves", s.stats.lp_cold_solves);
            sgmap_trace::add(trace, "ilp.refactorizations", s.stats.refactorizations);
            sgmap_trace::add(trace, "ilp.bound_flips", s.stats.bound_flips);
            sgmap_trace::add(
                trace,
                "ilp.presolve_removed_rows",
                s.stats.presolve_removed_rows,
            );
        }
        result
    }

    fn solve_inner(&self, model: &Model) -> Result<Solution> {
        model.validate()?;
        let start = Instant::now();
        let deadline = start.checked_add(self.options.time_limit);
        let minimize = model.objective_sense() == ObjectiveSense::Minimize;
        // "Better" means smaller for minimisation, larger for maximisation.
        let better = |a: f64, b: f64| {
            if minimize {
                a < b - 1e-12
            } else {
                a > b + 1e-12
            }
        };

        // Presolve. The search runs on the reduced model; `offset` converts
        // reduced LP objectives back to the original space and `pre` maps
        // solutions back.
        let pre: Option<PresolveMap> = if self.options.presolve {
            match presolve(model, self.options.integrality_tol) {
                Presolved::Infeasible => return Err(IlpError::Infeasible),
                Presolved::Reduced(map) => Some(map),
            }
        } else {
            None
        };
        let (search_model, offset) = match &pre {
            Some(map) => (&map.model, map.offset),
            None => (model, 0.0),
        };
        let (removed_rows, removed_cols) = match &pre {
            Some(map) => (map.removed_rows as u64, map.removed_cols as u64),
            None => (0, 0),
        };
        let restore = |values: &[f64]| -> Vec<f64> {
            match &pre {
                Some(map) => map.restore(values),
                None => values.to_vec(),
            }
        };

        // Presolve solved the whole model: the fixed values are the unique
        // (and hence optimal) solution.
        if search_model.num_vars() == 0 {
            let values = restore(&[]);
            let objective = model.evaluate_objective(&values);
            return Ok(Solution {
                values,
                objective,
                status: SolutionStatus::Optimal,
                nodes_explored: 0,
                stats: SolveStats {
                    presolve_removed_rows: removed_rows,
                    presolve_removed_cols: removed_cols,
                    ..SolveStats::default()
                },
            });
        }

        // The incumbent lives in *original* variable space; bounds from the
        // reduced search are converted with `offset` before any comparison.
        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        if let Some(ws) = &self.warm_start {
            if ws.len() == model.num_vars()
                && model.is_feasible(ws, 1e-6)
                && is_integral(model, ws, self.options.integrality_tol)
            {
                incumbent = Some((ws.clone(), model.evaluate_objective(ws)));
            }
        }

        // The LP workspace every node shares: one sparse matrix, one basis
        // warm-started from node to node.
        let mut lp = LpWorkspace::new(search_model);
        let mut nodes_explored = 0usize;
        let mut budget_hit = false;
        let mut gap_stop = false;

        // Open nodes: a best-bound heap plus a dive stack holding the
        // preferred child of the last branching, so the search plunges for an
        // early incumbent and then continues from the best bound.
        let mut heap: BinaryHeap<ByBound> = BinaryHeap::new();
        let mut dive: Vec<OpenNode> = Vec::new();
        let mut seq = 0u64;
        let score_of = |bound: f64| if minimize { -bound } else { bound };

        // Root relaxation (cold primal solve).
        nodes_explored += 1;
        let root_outcome = {
            let _node_span = sgmap_trace::span(self.trace.as_ref(), "ilp.node");
            lp.solve(&[], deadline)
        };
        let finish_stats = |nodes_explored: usize, lp: &LpWorkspace, gap: f64| SolveStats {
            nodes: nodes_explored as u64,
            lp_iterations: lp.stats.iterations,
            lp_warm_starts: lp.stats.warm_starts,
            lp_cold_solves: lp.stats.cold_solves,
            refactorizations: lp.stats.refactorizations,
            bound_flips: lp.stats.bound_flips,
            presolve_removed_rows: removed_rows,
            presolve_removed_cols: removed_cols,
            optimality_gap: gap,
        };
        let root = match root_outcome {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Infeasible => return Err(IlpError::Infeasible),
            LpOutcome::Unbounded => return Err(IlpError::Unbounded),
            LpOutcome::TimeLimit => {
                // The budget died inside the root solve: fall back to the
                // bound-derived static objective bound for the gap.
                return match incumbent {
                    Some((values, objective)) => {
                        let gap = gap_between(minimize, objective, static_bound(model));
                        Ok(Solution {
                            values,
                            objective,
                            status: SolutionStatus::Feasible,
                            nodes_explored,
                            stats: finish_stats(nodes_explored, &lp, gap),
                        })
                    }
                    None => Err(IlpError::NoIntegerSolution),
                };
            }
            LpOutcome::Numerical(msg) => return Err(IlpError::Numerical(msg)),
        };
        if is_integral(search_model, &root.values, self.options.integrality_tol) {
            let reduced = round_binaries(search_model, root.values);
            let values = restore(&reduced);
            let objective = model.evaluate_objective(&values);
            return Ok(Solution {
                values,
                objective,
                status: SolutionStatus::Optimal,
                nodes_explored,
                stats: finish_stats(nodes_explored, &lp, 0.0),
            });
        }

        push_children(
            &mut heap,
            &mut dive,
            &mut seq,
            score_of,
            search_model,
            &root,
            root.objective + offset,
            &[],
            self.options.integrality_tol,
        );

        // Best remaining original-space bound among the open nodes,
        // optionally also covering one just-popped node.
        let peek_bound = |heap: &BinaryHeap<ByBound>, dive: &[OpenNode], extra: Option<f64>| {
            let mut best: Option<f64> = extra;
            if let Some(top) = heap.peek() {
                let b = top.node.bound;
                best = Some(match best {
                    Some(cur) if better(cur, b) => cur,
                    _ => b,
                });
            }
            for n in dive {
                best = Some(match best {
                    Some(cur) if better(cur, n.bound) => cur,
                    _ => n.bound,
                });
            }
            best
        };

        loop {
            // Dive first (plunge towards an incumbent), then best bound.
            let node = match dive.pop() {
                Some(n) => n,
                None => match heap.pop() {
                    Some(b) => b.node,
                    None => break,
                },
            };
            if nodes_explored >= self.options.max_nodes
                || deadline.is_some_and(|d| Instant::now() >= d)
            {
                budget_hit = true;
                // Keep the node's bound visible to the gap computation.
                let score = score_of(node.bound);
                heap.push(ByBound { node, score });
                break;
            }
            // Bound pruning against the incumbent, and the optional early
            // stop once the whole frontier is within `relative_gap`.
            if let Some((_, inc_obj)) = &incumbent {
                if !better(node.bound, *inc_obj) {
                    continue;
                }
                if self.options.relative_gap > 0.0 {
                    if let Some(frontier) = peek_bound(&heap, &dive, Some(node.bound)) {
                        if gap_between(minimize, *inc_obj, frontier) <= self.options.relative_gap {
                            gap_stop = true;
                            let score = score_of(node.bound);
                            heap.push(ByBound { node, score });
                            break;
                        }
                    }
                }
            }
            nodes_explored += 1;
            let outcome = {
                let mut node_span = sgmap_trace::span(self.trace.as_ref(), "ilp.node");
                node_span.arg("depth", node.bounds.len());
                lp.solve(&node.bounds, deadline)
            };
            let relax = match outcome {
                LpOutcome::Optimal(s) => s,
                LpOutcome::Infeasible => continue,
                // A numerically troubled node is skipped rather than
                // aborting the whole search; the incumbent stays valid.
                LpOutcome::Numerical(_) => continue,
                LpOutcome::Unbounded => return Err(IlpError::Unbounded),
                LpOutcome::TimeLimit => {
                    budget_hit = true;
                    let score = score_of(node.bound);
                    heap.push(ByBound { node, score });
                    break;
                }
            };
            let relax_bound = relax.objective + offset;
            if let Some((_, inc_obj)) = &incumbent {
                if !better(relax_bound, *inc_obj) {
                    continue;
                }
            }
            if is_integral(search_model, &relax.values, self.options.integrality_tol) {
                // Integer feasible: candidate incumbent.
                let reduced = round_binaries(search_model, relax.values);
                let values = restore(&reduced);
                let obj = model.evaluate_objective(&values);
                let accept = match &incumbent {
                    None => true,
                    Some((_, inc_obj)) => better(obj, *inc_obj),
                };
                if accept {
                    incumbent = Some((values, obj));
                }
            } else {
                push_children(
                    &mut heap,
                    &mut dive,
                    &mut seq,
                    score_of,
                    search_model,
                    &relax,
                    relax_bound,
                    &node.bounds,
                    self.options.integrality_tol,
                );
            }
        }

        match incumbent {
            Some((values, objective)) => {
                let gap = if budget_hit {
                    let bound =
                        peek_bound(&heap, &dive, None).unwrap_or_else(|| static_bound(model));
                    gap_between(minimize, objective, bound)
                } else if gap_stop {
                    let bound = peek_bound(&heap, &dive, None).unwrap_or(objective);
                    gap_between(minimize, objective, bound)
                } else {
                    0.0
                };
                Ok(Solution {
                    values,
                    objective,
                    status: if budget_hit {
                        SolutionStatus::Feasible
                    } else {
                        SolutionStatus::Optimal
                    },
                    nodes_explored,
                    stats: finish_stats(nodes_explored, &lp, gap),
                })
            }
            None => Err(IlpError::NoIntegerSolution),
        }
    }
}

/// Relative gap between an incumbent objective and a valid bound, clamped at
/// zero (an already-pruned frontier can trail the incumbent).
fn gap_between(minimize: bool, incumbent: f64, bound: f64) -> f64 {
    let diff = if minimize {
        incumbent - bound
    } else {
        bound - incumbent
    };
    diff.max(0.0) / incumbent.abs().max(1e-9)
}

/// A bound on the objective from variable bounds alone: each variable sits at
/// whichever of its bounds is better for the objective, constraints ignored.
/// Used as the gap fallback when the search dies before the root relaxation
/// finishes. Infinite when some improving bound is infinite.
fn static_bound(model: &Model) -> f64 {
    let minimize = model.objective_sense() == ObjectiveSense::Minimize;
    let mut total = 0.0;
    for var in &model.vars {
        let c = var.objective;
        if c == 0.0 {
            continue;
        }
        let (a, b) = (c * var.lo, c * var.hi);
        total += if minimize { a.min(b) } else { a.max(b) };
    }
    total
}

/// Branches on the most fractional binary of `relax`: the preferred
/// ("rounded") child goes on the dive stack so it is explored next, the
/// other child enters the best-bound heap under the parent's bound.
#[allow(clippy::too_many_arguments)]
fn push_children(
    heap: &mut BinaryHeap<ByBound>,
    dive: &mut Vec<OpenNode>,
    seq: &mut u64,
    score_of: impl Fn(f64) -> f64,
    model: &Model,
    relax: &LpSolution,
    bound: f64,
    bounds: &[VarBound],
    tol: f64,
) {
    let branch_var = match most_fractional(model, relax, tol) {
        Some(v) => v,
        None => return,
    };
    let frac = relax.values[branch_var];
    let mut lo_bounds = Vec::with_capacity(bounds.len() + 1);
    lo_bounds.extend_from_slice(bounds);
    lo_bounds.push(VarBound {
        var: branch_var,
        lo: 0.0,
        hi: 0.0,
    });
    let mut hi_bounds = Vec::with_capacity(bounds.len() + 1);
    hi_bounds.extend_from_slice(bounds);
    hi_bounds.push(VarBound {
        var: branch_var,
        lo: 1.0,
        hi: 1.0,
    });
    let mut node_of = |bounds: Vec<VarBound>| {
        *seq += 1;
        OpenNode {
            bounds,
            bound,
            seq: *seq,
        }
    };
    let (preferred, other) = if frac >= 0.5 {
        (node_of(hi_bounds), node_of(lo_bounds))
    } else {
        (node_of(lo_bounds), node_of(hi_bounds))
    };
    let score = score_of(other.bound);
    heap.push(ByBound { node: other, score });
    dive.push(preferred);
}

/// Returns the index of the binary variable whose relaxation value is the
/// most fractional, or `None` if all binaries are integral.
fn most_fractional(model: &Model, relax: &LpSolution, tol: f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for var in model.binary_vars() {
        let v = relax.values[var.index()];
        let frac = (v - v.round()).abs();
        if frac > tol {
            let dist_to_half = (0.5 - (v - v.floor())).abs();
            match best {
                None => best = Some((var.index(), dist_to_half)),
                Some((_, d)) if dist_to_half < d => best = Some((var.index(), dist_to_half)),
                _ => {}
            }
        }
    }
    best.map(|(i, _)| i)
}

fn is_integral(model: &Model, values: &[f64], tol: f64) -> bool {
    model
        .binary_vars()
        .iter()
        .all(|v| (values[v.index()] - values[v.index()].round()).abs() <= tol)
}

fn round_binaries(model: &Model, mut values: Vec<f64>) -> Vec<f64> {
    for v in model.binary_vars() {
        values[v.index()] = values[v.index()].round().clamp(0.0, 1.0);
    }
    for v in values.iter_mut() {
        if v.abs() < TOL {
            *v = 0.0;
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, ObjectiveSense};

    #[test]
    fn knapsack_is_solved_to_optimality() {
        // max 10a + 13b + 7c + 5d  s.t. 3a + 4b + 2c + 1d <= 6.
        // Optimum: a + c + d = 22 with weight 6 (b + c = 20 at weight 6).
        let mut m = Model::new(ObjectiveSense::Maximize);
        let a = m.add_binary("a", 10.0);
        let b = m.add_binary("b", 13.0);
        let c = m.add_binary("c", 7.0);
        let d = m.add_binary("d", 5.0);
        m.add_constraint_le(vec![(a, 3.0), (b, 4.0), (c, 2.0), (d, 1.0)], 6.0);
        let s = Solver::new().solve(&m).unwrap();
        assert_eq!(s.status, SolutionStatus::Optimal);
        assert!((s.objective - 22.0).abs() < 1e-6);
        assert!(s.binary_value(a) && s.binary_value(c) && s.binary_value(d));
        assert!(!s.binary_value(b));
        assert!(s.stats.nodes >= 1);
        assert!(s.stats.lp_iterations >= 1);
        assert_eq!(s.stats.optimality_gap, 0.0);
    }

    #[test]
    fn assignment_problem_with_equalities() {
        // Assign 3 jobs to 3 machines, minimise cost.
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::new(ObjectiveSense::Minimize);
        let mut x = vec![vec![]; 3];
        for (i, xi) in x.iter_mut().enumerate() {
            for (j, &c) in cost[i].iter().enumerate() {
                xi.push(m.add_binary(format!("x{i}{j}"), c));
            }
        }
        for xi in &x {
            m.add_constraint_eq(xi.iter().map(|&v| (v, 1.0)).collect(), 1.0);
        }
        for j in 0..3 {
            m.add_constraint_eq(x.iter().map(|xi| (xi[j], 1.0)).collect(), 1.0);
        }
        let s = Solver::new().solve(&m).unwrap();
        // Best permutations reach 12 (e.g. job0->m1, job1->m0, job2->m2).
        assert!((s.objective - 12.0).abs() < 1e-6);
        assert_eq!(s.status, SolutionStatus::Optimal);
    }

    #[test]
    fn mixed_integer_min_max_structure() {
        // Mimics the mapping formulation: minimise t with t >= load of each
        // of 2 bins, items {5, 4, 3, 2} assigned to exactly one bin.
        let w = [5.0, 4.0, 3.0, 2.0];
        let mut m = Model::new(ObjectiveSense::Minimize);
        let t = m.add_continuous("t", 1.0);
        let mut x = Vec::new();
        for (i, _) in w.iter().enumerate() {
            x.push([
                m.add_binary(format!("x{i}a"), 0.0),
                m.add_binary(format!("x{i}b"), 0.0),
            ]);
        }
        for xs in &x {
            m.add_constraint_eq(vec![(xs[0], 1.0), (xs[1], 1.0)], 1.0);
        }
        for bin in 0..2 {
            let mut terms: Vec<_> = x
                .iter()
                .enumerate()
                .map(|(i, xs)| (xs[bin], w[i]))
                .collect();
            terms.push((t, -1.0));
            m.add_constraint_le(terms, 0.0);
        }
        let s = Solver::new().solve(&m).unwrap();
        // Perfect split: {5,2} and {4,3} -> makespan 7.
        assert!((s.objective - 7.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_is_used_as_incumbent() {
        let mut m = Model::new(ObjectiveSense::Maximize);
        let a = m.add_binary("a", 1.0);
        let b = m.add_binary("b", 1.0);
        m.add_constraint_le(vec![(a, 1.0), (b, 1.0)], 1.0);
        let s = Solver::new().warm_start(vec![1.0, 0.0]).solve(&m).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integer_model_is_reported() {
        let mut m = Model::new(ObjectiveSense::Minimize);
        let a = m.add_binary("a", 1.0);
        let b = m.add_binary("b", 1.0);
        m.add_constraint_ge(vec![(a, 1.0), (b, 1.0)], 3.0);
        assert!(matches!(
            Solver::new().solve(&m),
            Err(IlpError::Infeasible) | Err(IlpError::NoIntegerSolution)
        ));
    }

    #[test]
    fn tight_budget_still_returns_a_feasible_solution() {
        // A slightly larger knapsack with a tiny node budget: the solver
        // should still return something feasible via the root or warm start
        // rather than erroring, or report NoIntegerSolution cleanly.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_binary(format!("v{i}"), 1.0 + (i as f64) * 0.3))
            .collect();
        m.add_constraint_le(vars.iter().map(|&v| (v, 1.0)).collect(), 3.0);
        let opts = SolverOptions {
            max_nodes: 2,
            ..SolverOptions::default()
        };
        let warm: Vec<f64> = (0..8).map(|i| if i < 3 { 1.0 } else { 0.0 }).collect();
        let s = Solver::with_options(opts)
            .warm_start(warm)
            .solve(&m)
            .unwrap();
        assert!(s.objective >= 3.0 - 1e-6);
    }

    #[test]
    fn pure_lp_model_presolves_to_its_bound() {
        // min x with x >= 2.5: the singleton row becomes a bound and the
        // empty column is fixed at it — no LP runs at all.
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        m.add_constraint_ge(vec![(x, 1.0)], 2.5);
        let s = Solver::new().solve(&m).unwrap();
        assert_eq!(s.status, SolutionStatus::Optimal);
        assert!((s.objective - 2.5).abs() < 1e-6);
        assert_eq!(s.nodes_explored, 0, "presolve should solve this alone");
        assert_eq!(s.stats.presolve_removed_rows, 1);
        assert_eq!(s.stats.presolve_removed_cols, 1);
        assert_eq!(s.stats.optimality_gap, 0.0);

        // With presolve off the root relaxation answers instead.
        let opts = SolverOptions {
            presolve: false,
            ..SolverOptions::default()
        };
        let s = Solver::with_options(opts).solve(&m).unwrap();
        assert_eq!(s.status, SolutionStatus::Optimal);
        assert!((s.objective - 2.5).abs() < 1e-6);
        assert_eq!(s.nodes_explored, 1);
        assert_eq!(s.stats.lp_cold_solves, 1);
        assert_eq!(s.stats.lp_warm_starts, 0);
    }

    #[test]
    fn deeper_searches_warm_start_their_nodes() {
        // An assignment-flavoured model big enough to branch several times.
        let cost = [
            [4.0, 2.0, 8.0, 5.0],
            [4.0, 3.0, 7.0, 6.0],
            [3.0, 1.0, 6.0, 4.0],
            [5.0, 2.0, 3.0, 7.0],
        ];
        let mut m = Model::new(ObjectiveSense::Minimize);
        let mut x = vec![vec![]; 4];
        for (i, xi) in x.iter_mut().enumerate() {
            for (j, &c) in cost[i].iter().enumerate() {
                xi.push(m.add_binary(format!("x{i}{j}"), c));
            }
        }
        for xi in &x {
            m.add_constraint_eq(xi.iter().map(|&v| (v, 1.0)).collect(), 1.0);
        }
        for j in 0..4 {
            m.add_constraint_eq(x.iter().map(|xi| (xi[j], 1.0)).collect(), 1.0);
        }
        // Couple the assignments so the LP relaxation is fractional.
        let all: Vec<_> = x
            .iter()
            .flat_map(|xi| xi.iter().map(|&v| (v, 1.0)))
            .collect();
        m.add_constraint_le(all, 4.0);
        let s = Solver::new().solve(&m).unwrap();
        assert_eq!(s.status, SolutionStatus::Optimal);
        if s.nodes_explored > 1 {
            assert!(
                s.stats.lp_warm_starts > 0,
                "every non-root node should try the dual warm start: {:?}",
                s.stats
            );
        }
    }

    #[test]
    fn time_limit_is_enforced_inside_lp_reoptimisations() {
        // A zero time limit must come back promptly with the warm-start
        // incumbent rather than finishing the search.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let vars: Vec<_> = (0..14)
            .map(|i| m.add_binary(format!("v{i}"), 1.0 + (i as f64) * 0.21))
            .collect();
        for chunk in vars.chunks(3) {
            m.add_constraint_le(chunk.iter().map(|&v| (v, 1.0)).collect(), 2.0);
        }
        m.add_constraint_le(vars.iter().map(|&v| (v, 1.0)).collect(), 7.0);
        let warm: Vec<f64> = (0..14).map(|i| if i < 2 { 1.0 } else { 0.0 }).collect();
        let opts = SolverOptions {
            time_limit: Duration::ZERO,
            ..SolverOptions::default()
        };
        let s = Solver::with_options(opts)
            .warm_start(warm)
            .solve(&m)
            .unwrap();
        assert_eq!(s.status, SolutionStatus::Feasible);
        assert!(s.objective >= 2.0 - 1e-6);
    }

    #[test]
    fn zero_time_limit_reports_finite_gap() {
        // The CI sweep gate: a budget-killed solve must still report how far
        // its incumbent may be from optimal. All variables here are bounded,
        // so even the static fallback bound is finite.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_binary(format!("v{i}"), 1.0 + (i as f64) * 0.17))
            .collect();
        for chunk in vars.chunks(4) {
            m.add_constraint_le(chunk.iter().map(|&v| (v, 1.0)).collect(), 2.0);
        }
        let warm: Vec<f64> = (0..12)
            .map(|i| if i % 4 == 0 { 1.0 } else { 0.0 })
            .collect();
        let opts = SolverOptions {
            time_limit: Duration::ZERO,
            ..SolverOptions::default()
        };
        let s = Solver::with_options(opts)
            .warm_start(warm)
            .solve(&m)
            .unwrap();
        assert_eq!(s.status, SolutionStatus::Feasible);
        assert!(
            s.stats.optimality_gap.is_finite(),
            "gap must be finite, got {}",
            s.stats.optimality_gap
        );
        assert!(s.stats.optimality_gap >= 0.0);
    }

    #[test]
    fn node_budget_reports_the_frontier_gap() {
        // Stop after a couple of nodes: open nodes remain, and their best
        // bound yields a finite positive-or-zero gap.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let vars: Vec<_> = (0..10)
            .map(|i| m.add_binary(format!("v{i}"), 3.0 + ((i * 7) % 5) as f64))
            .collect();
        m.add_constraint_le(vars.iter().map(|&v| (v, 2.0)).collect(), 9.0);
        for pair in vars.chunks(2) {
            m.add_constraint_le(pair.iter().map(|&v| (v, 1.0)).collect(), 1.0);
        }
        let opts = SolverOptions {
            max_nodes: 3,
            ..SolverOptions::default()
        };
        let s = Solver::with_options(opts).solve(&m);
        if let Ok(s) = s {
            if s.status == SolutionStatus::Feasible {
                assert!(s.stats.optimality_gap.is_finite());
                assert!(s.stats.optimality_gap >= 0.0);
            } else {
                assert_eq!(s.stats.optimality_gap, 0.0);
            }
        }
    }

    #[test]
    fn relative_gap_early_stop_returns_optimal_status() {
        // With a huge allowed gap the search stops at the first incumbent
        // but still reports Optimal (within the requested gap).
        let mut m = Model::new(ObjectiveSense::Maximize);
        let vars: Vec<_> = (0..10)
            .map(|i| m.add_binary(format!("v{i}"), 5.0 + ((i * 3) % 7) as f64))
            .collect();
        m.add_constraint_le(vars.iter().map(|&v| (v, 3.0)).collect(), 10.0);
        for pair in vars.chunks(2) {
            m.add_constraint_le(pair.iter().map(|&v| (v, 1.0)).collect(), 1.0);
        }
        let opts = SolverOptions {
            relative_gap: 0.9,
            ..SolverOptions::default()
        };
        let s = Solver::with_options(opts).solve(&m).unwrap();
        assert_eq!(s.status, SolutionStatus::Optimal);
        // The exact solve must never be worse than the gap-limited one.
        let exact = Solver::new().solve(&m).unwrap();
        assert!(exact.objective >= s.objective - 1e-9);
    }

    #[test]
    fn presolve_on_and_off_agree() {
        let mut m = Model::new(ObjectiveSense::Minimize);
        let t = m.add_continuous("t", 1.0);
        let a = m.add_binary("a", 0.5);
        let b = m.add_binary("b", 0.25);
        let fixed = m.add_continuous("fixed", 2.0);
        m.set_bounds(fixed, 1.5, 1.5);
        m.add_constraint_eq(vec![(a, 1.0), (b, 1.0)], 1.0);
        m.add_constraint_ge(vec![(t, 1.0), (a, -2.0), (fixed, 1.0)], 0.5);
        let on = Solver::new().solve(&m).unwrap();
        let opts = SolverOptions {
            presolve: false,
            ..SolverOptions::default()
        };
        let off = Solver::with_options(opts).solve(&m).unwrap();
        assert!(
            (on.objective - off.objective).abs() < 1e-6,
            "presolve on {} vs off {}",
            on.objective,
            off.objective
        );
        assert!((on.value(fixed) - 1.5).abs() < 1e-9);
        assert!(on.stats.presolve_removed_cols >= 1);
        assert_eq!(off.stats.presolve_removed_cols, 0);
        assert!(m.is_feasible(&on.values, 1e-6));
    }
}
