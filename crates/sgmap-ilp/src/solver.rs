//! Branch-and-bound over the binary variables of a [`Model`].
//!
//! All nodes share one [`LpWorkspace`]: the root relaxation is solved cold
//! by the primal simplex, and every subsequent node — which only tightens
//! variable bounds — inherits the basis left behind by the previously solved
//! node and reoptimises with the bounded-variable dual simplex, typically in
//! a handful of pivots. The wall-clock budget is enforced *inside* the LP
//! loops too, so a single pathological reoptimisation cannot blow past
//! [`SolverOptions::time_limit`].

use std::time::{Duration, Instant};

use crate::error::IlpError;
use crate::model::{Model, ObjectiveSense};
use crate::simplex::{LpSolution, VarBound, TOL};
use crate::workspace::{LpOutcome, LpWorkspace};
use crate::Result;

/// How the search terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolutionStatus {
    /// The returned solution is proven optimal.
    Optimal,
    /// The search hit its node or time budget; the returned solution is the
    /// best integer-feasible solution found so far.
    Feasible,
}

/// Counters describing the work a solve performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Branch-and-bound nodes whose relaxation was (re)optimised.
    pub nodes: u64,
    /// Simplex iterations (pivots and bound flips) across all nodes.
    pub lp_iterations: u64,
    /// Node relaxations answered by warm-started dual reoptimisation.
    pub lp_warm_starts: u64,
    /// Node relaxations that ran the primal simplex from a cold basis.
    pub lp_cold_solves: u64,
}

/// An integer-feasible solution of a [`Model`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Value of each variable, indexed by [`VarId::index`](crate::VarId::index).
    pub values: Vec<f64>,
    /// Objective value in the model's sense.
    pub objective: f64,
    /// Whether optimality was proven.
    pub status: SolutionStatus,
    /// Number of branch-and-bound nodes explored.
    pub nodes_explored: usize,
    /// LP-engine counters of this solve.
    pub stats: SolveStats,
}

impl Solution {
    /// Returns the rounded 0/1 value of a binary variable.
    pub fn binary_value(&self, var: crate::VarId) -> bool {
        self.values[var.index()] > 0.5
    }

    /// Returns the value of a variable.
    pub fn value(&self, var: crate::VarId) -> f64 {
        self.values[var.index()]
    }
}

/// Budget and behaviour knobs for the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Wall-clock limit for the whole solve, enforced both between nodes and
    /// inside long LP reoptimisations.
    pub time_limit: Duration,
    /// Relative optimality gap at which the search stops early.
    pub relative_gap: f64,
    /// Absolute tolerance for considering a relaxation value integral.
    pub integrality_tol: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_nodes: 20_000,
            time_limit: Duration::from_secs(30),
            relative_gap: 1e-6,
            integrality_tol: 1e-6,
        }
    }
}

/// Branch-and-bound solver for models with binary variables.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    options: SolverOptions,
    warm_start: Option<Vec<f64>>,
    trace: Option<std::sync::Arc<sgmap_trace::Collector>>,
}

struct Node {
    bounds: Vec<VarBound>,
    /// LP bound of the parent (used for pruning before the re-solve).
    parent_bound: f64,
}

impl Solver {
    /// Creates a solver with default options.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Creates a solver with the given options.
    pub fn with_options(options: SolverOptions) -> Self {
        Solver {
            options,
            warm_start: None,
            trace: None,
        }
    }

    /// Supplies an integer-feasible starting point used as the initial
    /// incumbent (it is validated and ignored if infeasible).
    pub fn warm_start(mut self, values: Vec<f64>) -> Self {
        self.warm_start = Some(values);
        self
    }

    /// Attaches a trace collector: the whole solve runs under an `ilp.solve`
    /// span, every branch-and-bound relaxation under an `ilp.node` span, and
    /// the [`SolveStats`] of each successful solve are accumulated into the
    /// `ilp.nodes` / `ilp.lp_iterations` / `ilp.lp_warm_starts` /
    /// `ilp.lp_cold_solves` counters. The collector is write-only: it cannot
    /// change the solution.
    pub fn with_trace(mut self, trace: Option<std::sync::Arc<sgmap_trace::Collector>>) -> Self {
        self.trace = trace;
        self
    }

    /// Solves `model` to (proven or budget-limited) optimality.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::Infeasible`] / [`IlpError::Unbounded`] when the
    /// root relaxation already fails, and [`IlpError::NoIntegerSolution`]
    /// when the budget is exhausted without any integer-feasible point.
    pub fn solve(&self, model: &Model) -> Result<Solution> {
        let _solve_span = sgmap_trace::span(self.trace.as_ref(), "ilp.solve");
        let result = self.solve_inner(model);
        if let Ok(s) = &result {
            let trace = self.trace.as_ref();
            sgmap_trace::add(trace, "ilp.nodes", s.stats.nodes);
            sgmap_trace::add(trace, "ilp.lp_iterations", s.stats.lp_iterations);
            sgmap_trace::add(trace, "ilp.lp_warm_starts", s.stats.lp_warm_starts);
            sgmap_trace::add(trace, "ilp.lp_cold_solves", s.stats.lp_cold_solves);
        }
        result
    }

    fn solve_inner(&self, model: &Model) -> Result<Solution> {
        model.validate()?;
        let start = Instant::now();
        let deadline = start.checked_add(self.options.time_limit);
        let minimize = model.objective_sense() == ObjectiveSense::Minimize;
        // "Better" means smaller for minimisation, larger for maximisation.
        let better = |a: f64, b: f64| {
            if minimize {
                a < b - 1e-12
            } else {
                a > b + 1e-12
            }
        };

        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        if let Some(ws) = &self.warm_start {
            if ws.len() == model.num_vars()
                && model.is_feasible(ws, 1e-6)
                && is_integral(model, ws, self.options.integrality_tol)
            {
                incumbent = Some((ws.clone(), model.evaluate_objective(ws)));
            }
        }

        // The LP workspace every node shares: one sparse matrix, one basis
        // warm-started from node to node.
        let mut lp = LpWorkspace::new(model);
        let mut nodes_explored = 0usize;
        let mut budget_hit = false;

        let finish = |incumbent: Option<(Vec<f64>, f64)>,
                      budget_hit: bool,
                      nodes_explored: usize,
                      lp: &LpWorkspace| {
            match incumbent {
                Some((values, objective)) => Ok(Solution {
                    values,
                    objective,
                    status: if budget_hit {
                        SolutionStatus::Feasible
                    } else {
                        SolutionStatus::Optimal
                    },
                    nodes_explored,
                    stats: stats_of(nodes_explored, lp),
                }),
                None => Err(IlpError::NoIntegerSolution),
            }
        };

        // Root relaxation (cold primal solve).
        nodes_explored += 1;
        let root_outcome = {
            let _node_span = sgmap_trace::span(self.trace.as_ref(), "ilp.node");
            lp.solve(&[], deadline)
        };
        let root = match root_outcome {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Infeasible => return Err(IlpError::Infeasible),
            LpOutcome::Unbounded => return Err(IlpError::Unbounded),
            LpOutcome::TimeLimit => return finish(incumbent, true, nodes_explored, &lp),
            LpOutcome::Numerical(msg) => return Err(IlpError::Numerical(msg)),
        };
        if is_integral(model, &root.values, self.options.integrality_tol) {
            return Ok(Solution {
                objective: root.objective,
                values: round_binaries(model, root.values),
                status: SolutionStatus::Optimal,
                nodes_explored,
                stats: stats_of(nodes_explored, &lp),
            });
        }

        let mut stack: Vec<Node> = Vec::new();
        push_children(&mut stack, model, &root, &[], self.options.integrality_tol);

        while let Some(node) = stack.pop() {
            if nodes_explored >= self.options.max_nodes
                || deadline.is_some_and(|d| Instant::now() >= d)
            {
                budget_hit = true;
                break;
            }
            // Bound pruning against the incumbent.
            if let Some((_, inc_obj)) = &incumbent {
                if !better(node.parent_bound, *inc_obj) {
                    continue;
                }
            }
            nodes_explored += 1;
            let outcome = {
                let mut node_span = sgmap_trace::span(self.trace.as_ref(), "ilp.node");
                node_span.arg("depth", node.bounds.len());
                lp.solve(&node.bounds, deadline)
            };
            let relax = match outcome {
                LpOutcome::Optimal(s) => s,
                LpOutcome::Infeasible => continue,
                // A numerically troubled node is skipped rather than
                // aborting the whole search; the incumbent stays valid.
                LpOutcome::Numerical(_) => continue,
                LpOutcome::Unbounded => return Err(IlpError::Unbounded),
                LpOutcome::TimeLimit => {
                    budget_hit = true;
                    break;
                }
            };
            if let Some((_, inc_obj)) = &incumbent {
                if !better(relax.objective, *inc_obj) {
                    continue;
                }
            }
            if is_integral(model, &relax.values, self.options.integrality_tol) {
                // Integer feasible: candidate incumbent.
                let values = round_binaries(model, relax.values);
                let obj = model.evaluate_objective(&values);
                let accept = match &incumbent {
                    None => true,
                    Some((_, inc_obj)) => better(obj, *inc_obj),
                };
                if accept {
                    incumbent = Some((values, obj));
                }
            } else {
                push_children(
                    &mut stack,
                    model,
                    &relax,
                    &node.bounds,
                    self.options.integrality_tol,
                );
            }
        }

        finish(incumbent, budget_hit, nodes_explored, &lp)
    }
}

fn stats_of(nodes_explored: usize, lp: &LpWorkspace) -> SolveStats {
    SolveStats {
        nodes: nodes_explored as u64,
        lp_iterations: lp.stats.iterations,
        lp_warm_starts: lp.stats.warm_starts,
        lp_cold_solves: lp.stats.cold_solves,
    }
}

/// Branches on the most fractional binary of `relax` and pushes the two
/// children, the "rounded" one last so depth-first search pops it first.
fn push_children(
    stack: &mut Vec<Node>,
    model: &Model,
    relax: &LpSolution,
    bounds: &[VarBound],
    tol: f64,
) {
    let branch_var = match most_fractional(model, relax, tol) {
        Some(v) => v,
        None => return,
    };
    let frac = relax.values[branch_var];
    let mut lo_bounds = Vec::with_capacity(bounds.len() + 1);
    lo_bounds.extend_from_slice(bounds);
    lo_bounds.push(VarBound {
        var: branch_var,
        lo: 0.0,
        hi: 0.0,
    });
    let mut hi_bounds = Vec::with_capacity(bounds.len() + 1);
    hi_bounds.extend_from_slice(bounds);
    hi_bounds.push(VarBound {
        var: branch_var,
        lo: 1.0,
        hi: 1.0,
    });
    let lo_node = Node {
        bounds: lo_bounds,
        parent_bound: relax.objective,
    };
    let hi_node = Node {
        bounds: hi_bounds,
        parent_bound: relax.objective,
    };
    if frac >= 0.5 {
        stack.push(lo_node);
        stack.push(hi_node);
    } else {
        stack.push(hi_node);
        stack.push(lo_node);
    }
}

/// Returns the index of the binary variable whose relaxation value is the
/// most fractional, or `None` if all binaries are integral.
fn most_fractional(model: &Model, relax: &LpSolution, tol: f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for var in model.binary_vars() {
        let v = relax.values[var.index()];
        let frac = (v - v.round()).abs();
        if frac > tol {
            let dist_to_half = (0.5 - (v - v.floor())).abs();
            match best {
                None => best = Some((var.index(), dist_to_half)),
                Some((_, d)) if dist_to_half < d => best = Some((var.index(), dist_to_half)),
                _ => {}
            }
        }
    }
    best.map(|(i, _)| i)
}

fn is_integral(model: &Model, values: &[f64], tol: f64) -> bool {
    model
        .binary_vars()
        .iter()
        .all(|v| (values[v.index()] - values[v.index()].round()).abs() <= tol)
}

fn round_binaries(model: &Model, mut values: Vec<f64>) -> Vec<f64> {
    for v in model.binary_vars() {
        values[v.index()] = values[v.index()].round().clamp(0.0, 1.0);
    }
    for v in values.iter_mut() {
        if v.abs() < TOL {
            *v = 0.0;
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, ObjectiveSense};

    #[test]
    fn knapsack_is_solved_to_optimality() {
        // max 10a + 13b + 7c + 5d  s.t. 3a + 4b + 2c + 1d <= 6.
        // Optimum: a + c + d = 22 with weight 6 (b + c = 20 at weight 6).
        let mut m = Model::new(ObjectiveSense::Maximize);
        let a = m.add_binary("a", 10.0);
        let b = m.add_binary("b", 13.0);
        let c = m.add_binary("c", 7.0);
        let d = m.add_binary("d", 5.0);
        m.add_constraint_le(vec![(a, 3.0), (b, 4.0), (c, 2.0), (d, 1.0)], 6.0);
        let s = Solver::new().solve(&m).unwrap();
        assert_eq!(s.status, SolutionStatus::Optimal);
        assert!((s.objective - 22.0).abs() < 1e-6);
        assert!(s.binary_value(a) && s.binary_value(c) && s.binary_value(d));
        assert!(!s.binary_value(b));
        assert!(s.stats.nodes >= 1);
        assert!(s.stats.lp_iterations >= 1);
    }

    #[test]
    fn assignment_problem_with_equalities() {
        // Assign 3 jobs to 3 machines, minimise cost.
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::new(ObjectiveSense::Minimize);
        let mut x = vec![vec![]; 3];
        for (i, xi) in x.iter_mut().enumerate() {
            for (j, &c) in cost[i].iter().enumerate() {
                xi.push(m.add_binary(format!("x{i}{j}"), c));
            }
        }
        for xi in &x {
            m.add_constraint_eq(xi.iter().map(|&v| (v, 1.0)).collect(), 1.0);
        }
        for j in 0..3 {
            m.add_constraint_eq(x.iter().map(|xi| (xi[j], 1.0)).collect(), 1.0);
        }
        let s = Solver::new().solve(&m).unwrap();
        // Best permutations reach 12 (e.g. job0->m1, job1->m0, job2->m2).
        assert!((s.objective - 12.0).abs() < 1e-6);
        assert_eq!(s.status, SolutionStatus::Optimal);
    }

    #[test]
    fn mixed_integer_min_max_structure() {
        // Mimics the mapping formulation: minimise t with t >= load of each
        // of 2 bins, items {5, 4, 3, 2} assigned to exactly one bin.
        let w = [5.0, 4.0, 3.0, 2.0];
        let mut m = Model::new(ObjectiveSense::Minimize);
        let t = m.add_continuous("t", 1.0);
        let mut x = Vec::new();
        for (i, _) in w.iter().enumerate() {
            x.push([
                m.add_binary(format!("x{i}a"), 0.0),
                m.add_binary(format!("x{i}b"), 0.0),
            ]);
        }
        for xs in &x {
            m.add_constraint_eq(vec![(xs[0], 1.0), (xs[1], 1.0)], 1.0);
        }
        for bin in 0..2 {
            let mut terms: Vec<_> = x
                .iter()
                .enumerate()
                .map(|(i, xs)| (xs[bin], w[i]))
                .collect();
            terms.push((t, -1.0));
            m.add_constraint_le(terms, 0.0);
        }
        let s = Solver::new().solve(&m).unwrap();
        // Perfect split: {5,2} and {4,3} -> makespan 7.
        assert!((s.objective - 7.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_is_used_as_incumbent() {
        let mut m = Model::new(ObjectiveSense::Maximize);
        let a = m.add_binary("a", 1.0);
        let b = m.add_binary("b", 1.0);
        m.add_constraint_le(vec![(a, 1.0), (b, 1.0)], 1.0);
        let s = Solver::new().warm_start(vec![1.0, 0.0]).solve(&m).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integer_model_is_reported() {
        let mut m = Model::new(ObjectiveSense::Minimize);
        let a = m.add_binary("a", 1.0);
        let b = m.add_binary("b", 1.0);
        m.add_constraint_ge(vec![(a, 1.0), (b, 1.0)], 3.0);
        assert!(matches!(
            Solver::new().solve(&m),
            Err(IlpError::Infeasible) | Err(IlpError::NoIntegerSolution)
        ));
    }

    #[test]
    fn tight_budget_still_returns_a_feasible_solution() {
        // A slightly larger knapsack with a tiny node budget: the solver
        // should still return something feasible via the root or warm start
        // rather than erroring, or report NoIntegerSolution cleanly.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_binary(format!("v{i}"), 1.0 + (i as f64) * 0.3))
            .collect();
        m.add_constraint_le(vars.iter().map(|&v| (v, 1.0)).collect(), 3.0);
        let opts = SolverOptions {
            max_nodes: 2,
            ..SolverOptions::default()
        };
        let warm: Vec<f64> = (0..8).map(|i| if i < 3 { 1.0 } else { 0.0 }).collect();
        let s = Solver::with_options(opts)
            .warm_start(warm)
            .solve(&m)
            .unwrap();
        assert!(s.objective >= 3.0 - 1e-6);
    }

    #[test]
    fn pure_lp_model_is_returned_from_the_root() {
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        m.add_constraint_ge(vec![(x, 1.0)], 2.5);
        let s = Solver::new().solve(&m).unwrap();
        assert_eq!(s.status, SolutionStatus::Optimal);
        assert!((s.objective - 2.5).abs() < 1e-6);
        assert_eq!(s.nodes_explored, 1);
        assert_eq!(s.stats.lp_cold_solves, 1);
        assert_eq!(s.stats.lp_warm_starts, 0);
    }

    #[test]
    fn deeper_searches_warm_start_their_nodes() {
        // An assignment-flavoured model big enough to branch several times.
        let cost = [
            [4.0, 2.0, 8.0, 5.0],
            [4.0, 3.0, 7.0, 6.0],
            [3.0, 1.0, 6.0, 4.0],
            [5.0, 2.0, 3.0, 7.0],
        ];
        let mut m = Model::new(ObjectiveSense::Minimize);
        let mut x = vec![vec![]; 4];
        for (i, xi) in x.iter_mut().enumerate() {
            for (j, &c) in cost[i].iter().enumerate() {
                xi.push(m.add_binary(format!("x{i}{j}"), c));
            }
        }
        for xi in &x {
            m.add_constraint_eq(xi.iter().map(|&v| (v, 1.0)).collect(), 1.0);
        }
        for j in 0..4 {
            m.add_constraint_eq(x.iter().map(|xi| (xi[j], 1.0)).collect(), 1.0);
        }
        // Couple the assignments so the LP relaxation is fractional.
        let all: Vec<_> = x
            .iter()
            .flat_map(|xi| xi.iter().map(|&v| (v, 1.0)))
            .collect();
        m.add_constraint_le(all, 4.0);
        let s = Solver::new().solve(&m).unwrap();
        assert_eq!(s.status, SolutionStatus::Optimal);
        if s.nodes_explored > 1 {
            assert!(
                s.stats.lp_warm_starts > 0,
                "every non-root node should try the dual warm start: {:?}",
                s.stats
            );
        }
    }

    #[test]
    fn time_limit_is_enforced_inside_lp_reoptimisations() {
        // A zero time limit must come back promptly with the warm-start
        // incumbent rather than finishing the search.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let vars: Vec<_> = (0..14)
            .map(|i| m.add_binary(format!("v{i}"), 1.0 + (i as f64) * 0.21))
            .collect();
        for chunk in vars.chunks(3) {
            m.add_constraint_le(chunk.iter().map(|&v| (v, 1.0)).collect(), 2.0);
        }
        m.add_constraint_le(vars.iter().map(|&v| (v, 1.0)).collect(), 7.0);
        let warm: Vec<f64> = (0..14).map(|i| if i < 2 { 1.0 } else { 0.0 }).collect();
        let opts = SolverOptions {
            time_limit: Duration::ZERO,
            ..SolverOptions::default()
        };
        let s = Solver::with_options(opts)
            .warm_start(warm)
            .solve(&m)
            .unwrap();
        assert_eq!(s.status, SolutionStatus::Feasible);
        assert!(s.objective >= 2.0 - 1e-6);
    }
}
