//! Basis bookkeeping for the revised simplex: which variable is basic in
//! which row, the nonbasic-at-lower/upper states of everything else, and a
//! dense row-major basis inverse maintained by product-form updates.
//!
//! The mapping LPs top out at a few hundred to ~1000 rows, where a dense
//! `m × m` inverse (O(m²) per pivot) beats factored forms by simplicity and
//! cache behaviour. Drift from the product-form updates is bounded by
//! replay-refactorising every [`REFACTOR_INTERVAL`] pivots: the inverse is
//! rebuilt from the identity by re-pivoting the structural basic columns in
//! row order, which costs O(k·m²) for k structural basics instead of a full
//! O(m³) inversion.

use crate::sparse::SparseCols;

/// Where a variable currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarState {
    /// Basic in the given row.
    Basic(u32),
    /// Nonbasic at its (finite) lower bound.
    AtLower,
    /// Nonbasic at its (finite) upper bound.
    AtUpper,
}

/// Rebuild the inverse from scratch after this many product-form updates.
const REFACTOR_INTERVAL: u32 = 512;

/// The current basis together with its dense inverse.
#[derive(Debug, Clone)]
pub(crate) struct Basis {
    /// Basic variable of each row.
    pub(crate) basic: Vec<u32>,
    /// State of every column (structural + logical).
    pub(crate) state: Vec<VarState>,
    /// Row-major `m × m` basis inverse.
    binv: Vec<f64>,
    m: usize,
    pivots_since_refactor: u32,
}

impl Basis {
    /// An all-logical basis (`B = I`) with every structural column at its
    /// lower bound.
    pub(crate) fn logical(m: usize, n_struct: usize) -> Basis {
        let mut state = vec![VarState::AtLower; n_struct + m];
        let mut basic = Vec::with_capacity(m);
        for i in 0..m {
            basic.push((n_struct + i) as u32);
            state[n_struct + i] = VarState::Basic(i as u32);
        }
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }
        Basis {
            basic,
            state,
            binv,
            m,
            pivots_since_refactor: 0,
        }
    }

    /// Resets this basis in place to the all-logical configuration.
    pub(crate) fn reset_logical(&mut self) {
        let n_struct = self.state.len() - self.m;
        for s in self.state.iter_mut() {
            *s = VarState::AtLower;
        }
        for i in 0..self.m {
            self.basic[i] = (n_struct + i) as u32;
            self.state[n_struct + i] = VarState::Basic(i as u32);
        }
        self.binv.fill(0.0);
        for i in 0..self.m {
            self.binv[i * self.m + i] = 1.0;
        }
        self.pivots_since_refactor = 0;
    }

    /// Row `r` of the inverse (the `btran` of a unit vector).
    #[inline]
    pub(crate) fn row(&self, r: usize) -> &[f64] {
        &self.binv[r * self.m..(r + 1) * self.m]
    }

    /// `w = B⁻¹·a_j` for a structural or logical column.
    pub(crate) fn ftran(&self, cols: &SparseCols, j: usize, w: &mut Vec<f64>) {
        w.clear();
        w.resize(self.m, 0.0);
        match cols.logical_row(j) {
            Some(r) => {
                for (i, wi) in w.iter_mut().enumerate() {
                    *wi = self.binv[i * self.m + r];
                }
            }
            None => {
                for (r, v) in cols.col(j) {
                    if v != 0.0 {
                        for (i, wi) in w.iter_mut().enumerate() {
                            *wi += v * self.binv[i * self.m + r];
                        }
                    }
                }
            }
        }
    }

    /// `y = c_B'·B⁻¹` accumulated from the rows whose basic cost is
    /// non-zero. `cost` is indexed by *variable*; logical columns carry
    /// implicit zero cost when `cost.len() <= var`.
    pub(crate) fn btran_costs(&self, cost: &[f64], y: &mut Vec<f64>) {
        y.clear();
        y.resize(self.m, 0.0);
        for (i, &bv) in self.basic.iter().enumerate() {
            let cb = cost.get(bv as usize).copied().unwrap_or(0.0);
            if cb != 0.0 {
                let row = self.row(i);
                for (yk, &rk) in y.iter_mut().zip(row) {
                    *yk += cb * rk;
                }
            }
        }
    }

    /// Replaces the basic variable of row `r` by column `j`, whose `ftran`
    /// direction is `w` (so `w[r]` is the pivot element), and updates the
    /// inverse by a product-form step.
    ///
    /// Returns `false` (leaving the basis untouched) when the pivot element
    /// is numerically unusable.
    pub(crate) fn pivot(&mut self, cols_m: usize, r: usize, j: usize, w: &[f64]) -> bool {
        debug_assert_eq!(cols_m, self.m);
        if !self.eliminate(r, w) {
            return false;
        }
        let old = self.basic[r] as usize;
        self.basic[r] = j as u32;
        // The caller decides which bound the leaving variable lands on; give
        // it a definite (possibly overwritten) state so the invariant "every
        // non-basic column has a nonbasic state" always holds.
        if self.state[old] == VarState::Basic(r as u32) {
            self.state[old] = VarState::AtLower;
        }
        self.state[j] = VarState::Basic(r as u32);
        self.pivots_since_refactor += 1;
        true
    }

    /// The product-form update of the inverse for a pivot at `(r, w[r])`:
    /// scales the pivot row by `1/w[r]` and eliminates the direction from
    /// every other row. Returns `false` (inverse untouched) when the pivot
    /// element is numerically unusable.
    fn eliminate(&mut self, r: usize, w: &[f64]) -> bool {
        let pivot = w[r];
        if pivot.abs() < 1e-11 {
            return false;
        }
        let m = self.m;
        let inv = 1.0 / pivot;
        // Scale the pivot row of the inverse ...
        {
            let row_r = &mut self.binv[r * m..(r + 1) * m];
            for v in row_r.iter_mut() {
                *v *= inv;
            }
        }
        // ... and eliminate the direction from every other row.
        let (before, rest) = self.binv.split_at_mut(r * m);
        let (row_r, after) = rest.split_at_mut(m);
        for (i, chunk) in before.chunks_exact_mut(m).enumerate() {
            let f = w[i];
            if f != 0.0 {
                for (c, &p) in chunk.iter_mut().zip(row_r.iter()) {
                    *c -= f * p;
                }
            }
        }
        for (off, chunk) in after.chunks_exact_mut(m).enumerate() {
            let f = w[r + 1 + off];
            if f != 0.0 {
                for (c, &p) in chunk.iter_mut().zip(row_r.iter()) {
                    *c -= f * p;
                }
            }
        }
        true
    }

    /// Whether enough product-form updates accumulated to warrant a rebuild.
    pub(crate) fn wants_refactor(&self) -> bool {
        self.pivots_since_refactor >= REFACTOR_INTERVAL
    }

    /// Rebuilds the inverse from the identity by replaying a pivot for every
    /// structural basic column, in row order.
    ///
    /// Returns `false` if the basis matrix turned out singular (a replay
    /// pivot element vanished) — the caller should fall back to a cold
    /// logical-basis restart.
    pub(crate) fn refactorize(&mut self, cols: &SparseCols, scratch: &mut Vec<f64>) -> bool {
        let m = self.m;
        self.binv.fill(0.0);
        for i in 0..m {
            self.binv[i * m + i] = 1.0;
        }
        self.pivots_since_refactor = 0;
        for r in 0..m {
            let j = self.basic[r] as usize;
            if cols.logical_row(j) == Some(r) {
                continue; // identity column, nothing to eliminate
            }
            // w = current-partial-inverse · a_j, then pivot at row r.
            self.ftran(cols, j, scratch);
            if !self.eliminate(r, scratch) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, ObjectiveSense};

    fn toy() -> (SparseCols, Model) {
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_continuous("y", 1.0);
        m.add_constraint_le(vec![(x, 2.0), (y, 1.0)], 4.0);
        m.add_constraint_le(vec![(x, 1.0), (y, 3.0)], 6.0);
        (SparseCols::from_model(&m), m)
    }

    #[test]
    fn pivoting_tracks_the_true_inverse() {
        let (cols, _m) = toy();
        let mut basis = Basis::logical(2, 2);
        let mut w = Vec::new();
        // Bring x (col 0) into row 0: B = [[2, 0], [1, 1]].
        basis.ftran(&cols, 0, &mut w);
        assert_eq!(w, vec![2.0, 1.0]);
        assert!(basis.pivot(2, 0, 0, &w.clone()));
        // B^{-1} = [[0.5, 0], [-0.5, 1]].
        assert_eq!(basis.row(0), &[0.5, 0.0]);
        assert_eq!(basis.row(1), &[-0.5, 1.0]);
        // Bring y (col 1) into row 1: B = [[2, 1], [1, 3]], det 5.
        basis.ftran(&cols, 1, &mut w);
        let w2 = w.clone();
        assert!(basis.pivot(2, 1, 1, &w2));
        let expect = [[0.6, -0.2], [-0.2, 0.4]];
        for (r, want) in expect.iter().enumerate() {
            for (c, w) in want.iter().enumerate() {
                assert!((basis.row(r)[c] - w).abs() < 1e-12, "binv[{r}][{c}]");
            }
        }
        // Refactorisation reproduces the same inverse from scratch.
        let mut scratch = Vec::new();
        assert!(basis.refactorize(&cols, &mut scratch));
        for (r, want) in expect.iter().enumerate() {
            for (c, w) in want.iter().enumerate() {
                assert!(
                    (basis.row(r)[c] - w).abs() < 1e-12,
                    "refactor binv[{r}][{c}]"
                );
            }
        }
    }

    #[test]
    fn vanishing_pivot_is_rejected() {
        let (cols, _m) = toy();
        let mut basis = Basis::logical(2, 2);
        let w = vec![0.0, 1.0];
        assert!(!basis.pivot(2, 0, 0, &w));
        // Basis unchanged.
        assert_eq!(basis.basic, vec![2, 3]);
        let _ = cols;
    }
}
