//! Basis bookkeeping for the revised simplex: which variable is basic in
//! which row, the nonbasic-at-lower/upper states of everything else, and a
//! factorised representation of the basis matrix behind a common
//! ftran/btran/pivot interface.
//!
//! Two interchangeable backends implement that interface:
//!
//! * [`BasisBackend::SparseLu`] (the default) — a sparse LU factorisation
//!   with Markowitz pivot selection and an eta-update file
//!   ([`crate::lu::LuFactor`]); solves cost `O(nnz)` of the factors, so
//!   large sparse bases stay cheap,
//! * [`BasisBackend::DenseInverse`] — the dense row-major `m × m` inverse
//!   maintained by product-form updates that PR 5 shipped, kept as the
//!   reference backend for equivalence proptests and the
//!   dense-vs-LU benchmarks; every pivot costs `O(m²)`.
//!
//! Both backends bound drift the same way: the factors are rebuilt after a
//! fixed number of updates, and the LU backend additionally refactorises
//! early when an update shows large pivot growth.

use crate::lu::LuFactor;
use crate::sparse::SparseCols;

/// Where a variable currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarState {
    /// Basic in the given row.
    Basic(u32),
    /// Nonbasic at its (finite) lower bound.
    AtLower,
    /// Nonbasic at its (finite) upper bound.
    AtUpper,
}

/// Which factorised representation of the basis matrix the LP engine keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BasisBackend {
    /// Sparse LU factors (Markowitz pivoting, eta updates) — the default.
    #[default]
    SparseLu,
    /// Dense `m × m` basis inverse with product-form updates — the
    /// reference backend for equivalence tests and benchmarks.
    DenseInverse,
}

/// Rebuild the dense inverse from scratch after this many product-form
/// updates.
const DENSE_REFACTOR_INTERVAL: u32 = 512;

/// The dense row-major inverse backend.
#[derive(Debug, Clone)]
struct DenseFactor {
    /// Row-major `m × m` basis inverse.
    binv: Vec<f64>,
    m: usize,
    pivots_since_refactor: u32,
}

impl DenseFactor {
    fn identity(m: usize) -> DenseFactor {
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }
        DenseFactor {
            binv,
            m,
            pivots_since_refactor: 0,
        }
    }

    fn reset_identity(&mut self) {
        self.binv.fill(0.0);
        for i in 0..self.m {
            self.binv[i * self.m + i] = 1.0;
        }
        self.pivots_since_refactor = 0;
    }

    #[inline]
    fn row(&self, r: usize) -> &[f64] {
        &self.binv[r * self.m..(r + 1) * self.m]
    }

    /// The product-form update of the inverse for a pivot at `(r, w[r])`:
    /// scales the pivot row by `1/w[r]` and eliminates the direction from
    /// every other row. Returns `false` (inverse untouched) when the pivot
    /// element is numerically unusable.
    fn eliminate(&mut self, r: usize, w: &[f64]) -> bool {
        let pivot = w[r];
        if pivot.abs() < 1e-11 {
            return false;
        }
        let m = self.m;
        let inv = 1.0 / pivot;
        {
            let row_r = &mut self.binv[r * m..(r + 1) * m];
            for v in row_r.iter_mut() {
                *v *= inv;
            }
        }
        let (before, rest) = self.binv.split_at_mut(r * m);
        let (row_r, after) = rest.split_at_mut(m);
        for (i, chunk) in before.chunks_exact_mut(m).enumerate() {
            let f = w[i];
            if f != 0.0 {
                for (c, &p) in chunk.iter_mut().zip(row_r.iter()) {
                    *c -= f * p;
                }
            }
        }
        for (off, chunk) in after.chunks_exact_mut(m).enumerate() {
            let f = w[r + 1 + off];
            if f != 0.0 {
                for (c, &p) in chunk.iter_mut().zip(row_r.iter()) {
                    *c -= f * p;
                }
            }
        }
        true
    }
}

/// The current basis together with its factorised matrix.
#[derive(Debug, Clone)]
pub(crate) struct Basis {
    /// Basic variable of each row.
    pub(crate) basic: Vec<u32>,
    /// State of every column (structural + logical).
    pub(crate) state: Vec<VarState>,
    m: usize,
    factor: Factor,
}

#[derive(Debug, Clone)]
enum Factor {
    Dense(DenseFactor),
    Lu(Box<LuFactor>),
}

impl Basis {
    /// An all-logical basis (`B = I`) with every structural column at its
    /// lower bound, factored by the given backend.
    pub(crate) fn logical(m: usize, n_struct: usize, backend: BasisBackend) -> Basis {
        let mut state = vec![VarState::AtLower; n_struct + m];
        let mut basic = Vec::with_capacity(m);
        for i in 0..m {
            basic.push((n_struct + i) as u32);
            state[n_struct + i] = VarState::Basic(i as u32);
        }
        let factor = match backend {
            BasisBackend::DenseInverse => Factor::Dense(DenseFactor::identity(m)),
            BasisBackend::SparseLu => Factor::Lu(Box::new(LuFactor::identity(m))),
        };
        Basis {
            basic,
            state,
            m,
            factor,
        }
    }

    /// Resets this basis in place to the all-logical configuration.
    pub(crate) fn reset_logical(&mut self) {
        let n_struct = self.state.len() - self.m;
        for s in self.state.iter_mut() {
            *s = VarState::AtLower;
        }
        for i in 0..self.m {
            self.basic[i] = (n_struct + i) as u32;
            self.state[n_struct + i] = VarState::Basic(i as u32);
        }
        match &mut self.factor {
            Factor::Dense(d) => d.reset_identity(),
            Factor::Lu(lu) => lu.reset_identity(),
        }
    }

    /// `w = B⁻¹·a_j` for a structural or logical column.
    pub(crate) fn ftran(&mut self, cols: &SparseCols, j: usize, w: &mut Vec<f64>) {
        w.clear();
        w.resize(self.m, 0.0);
        match &mut self.factor {
            Factor::Dense(d) => match cols.logical_row(j) {
                Some(r) => {
                    for (i, wi) in w.iter_mut().enumerate() {
                        *wi = d.binv[i * d.m + r];
                    }
                }
                None => {
                    for (r, v) in cols.col(j) {
                        if v != 0.0 {
                            for (i, wi) in w.iter_mut().enumerate() {
                                *wi += v * d.binv[i * d.m + r];
                            }
                        }
                    }
                }
            },
            Factor::Lu(lu) => {
                match cols.logical_row(j) {
                    Some(r) => w[r] = 1.0,
                    None => {
                        for (r, v) in cols.col(j) {
                            w[r] = v;
                        }
                    }
                }
                lu.ftran(w);
            }
        }
    }

    /// `out = B⁻¹·rhs` for a dense right-hand side indexed by constraint
    /// row; the result is indexed by basis position.
    pub(crate) fn ftran_dense(&mut self, rhs: &[f64], out: &mut Vec<f64>) {
        out.clear();
        match &mut self.factor {
            Factor::Dense(d) => {
                out.resize(self.m, 0.0);
                for (i, oi) in out.iter_mut().enumerate() {
                    let row = d.row(i);
                    let mut acc = 0.0;
                    for (rk, uk) in row.iter().zip(rhs) {
                        acc += rk * uk;
                    }
                    *oi = acc;
                }
            }
            Factor::Lu(lu) => {
                out.extend_from_slice(rhs);
                lu.ftran(out);
            }
        }
    }

    /// `y' = c' · B⁻¹` for a dense vector `c` indexed by basis position;
    /// the result is indexed by constraint row.
    pub(crate) fn btran_dense(&mut self, c: &[f64], out: &mut Vec<f64>) {
        out.clear();
        match &mut self.factor {
            Factor::Dense(d) => {
                out.resize(self.m, 0.0);
                for (i, &ci) in c.iter().enumerate() {
                    if ci != 0.0 {
                        let row = d.row(i);
                        for (yk, &rk) in out.iter_mut().zip(row) {
                            *yk += ci * rk;
                        }
                    }
                }
            }
            Factor::Lu(lu) => {
                out.extend_from_slice(c);
                lu.btran(out);
            }
        }
    }

    /// Row `r` of the inverse (the btran of a unit vector): the pivot row
    /// `ρ` with `α_j = ρ·a_j` in the dual simplex.
    pub(crate) fn btran_unit(&mut self, r: usize, out: &mut Vec<f64>) {
        match &mut self.factor {
            Factor::Dense(d) => {
                out.clear();
                out.extend_from_slice(d.row(r));
            }
            Factor::Lu(lu) => {
                out.clear();
                out.resize(self.m, 0.0);
                out[r] = 1.0;
                lu.btran(out);
            }
        }
    }

    /// `y = c_B'·B⁻¹` accumulated from the rows whose basic cost is
    /// non-zero. `cost` is indexed by *variable*; logical columns carry
    /// implicit zero cost when `cost.len() <= var`.
    pub(crate) fn btran_costs(&mut self, cost: &[f64], y: &mut Vec<f64>) {
        match &mut self.factor {
            Factor::Dense(d) => {
                y.clear();
                y.resize(self.m, 0.0);
                for (i, &bv) in self.basic.iter().enumerate() {
                    let cb = cost.get(bv as usize).copied().unwrap_or(0.0);
                    if cb != 0.0 {
                        let row = d.row(i);
                        for (yk, &rk) in y.iter_mut().zip(row) {
                            *yk += cb * rk;
                        }
                    }
                }
            }
            Factor::Lu(lu) => {
                y.clear();
                y.resize(self.m, 0.0);
                for (i, &bv) in self.basic.iter().enumerate() {
                    y[i] = cost.get(bv as usize).copied().unwrap_or(0.0);
                }
                lu.btran(y);
            }
        }
    }

    /// Replaces the basic variable of row `r` by column `j`, whose `ftran`
    /// direction is `w` (so `w[r]` is the pivot element), and updates the
    /// factors by a product-form / eta step.
    ///
    /// Returns `false` (leaving the basis untouched) when the pivot element
    /// is numerically unusable.
    pub(crate) fn pivot(&mut self, cols_m: usize, r: usize, j: usize, w: &[f64]) -> bool {
        debug_assert_eq!(cols_m, self.m);
        let ok = match &mut self.factor {
            Factor::Dense(d) => {
                let ok = d.eliminate(r, w);
                if ok {
                    d.pivots_since_refactor += 1;
                }
                ok
            }
            Factor::Lu(lu) => lu.update(r, w),
        };
        if !ok {
            return false;
        }
        let old = self.basic[r] as usize;
        self.basic[r] = j as u32;
        // The caller decides which bound the leaving variable lands on; give
        // it a definite (possibly overwritten) state so the invariant "every
        // non-basic column has a nonbasic state" always holds.
        if self.state[old] == VarState::Basic(r as u32) {
            self.state[old] = VarState::AtLower;
        }
        self.state[j] = VarState::Basic(r as u32);
        true
    }

    /// Whether enough updates accumulated (or stability degraded enough) to
    /// warrant a rebuild of the factors.
    pub(crate) fn wants_refactor(&self) -> bool {
        match &self.factor {
            Factor::Dense(d) => d.pivots_since_refactor >= DENSE_REFACTOR_INTERVAL,
            Factor::Lu(lu) => lu.wants_refactor(),
        }
    }

    /// Whether the factors carry no updates since the last rebuild. Fresh
    /// factors produce accurate directions; stale ones may overstate a tiny
    /// pivot, so callers should refactorise before trusting one.
    pub(crate) fn is_fresh(&self) -> bool {
        match &self.factor {
            Factor::Dense(d) => d.pivots_since_refactor == 0,
            Factor::Lu(lu) => lu.is_fresh(),
        }
    }

    /// Rebuilds the factors from the current `basic[]` assignment.
    ///
    /// Returns `false` if the basis matrix turned out singular — the caller
    /// should fall back to a cold logical-basis restart.
    pub(crate) fn refactorize(&mut self, cols: &SparseCols, scratch: &mut Vec<f64>) -> bool {
        match &mut self.factor {
            Factor::Dense(d) => {
                let m = d.m;
                d.reset_identity();
                for r in 0..m {
                    let j = self.basic[r] as usize;
                    if cols.logical_row(j) == Some(r) {
                        continue; // identity column, nothing to eliminate
                    }
                    // w = current-partial-inverse · a_j, then pivot at row r.
                    scratch.clear();
                    scratch.resize(m, 0.0);
                    match cols.logical_row(j) {
                        Some(lr) => {
                            for (i, wi) in scratch.iter_mut().enumerate() {
                                *wi = d.binv[i * m + lr];
                            }
                        }
                        None => {
                            for (lr, v) in cols.col(j) {
                                if v != 0.0 {
                                    for (i, wi) in scratch.iter_mut().enumerate() {
                                        *wi += v * d.binv[i * m + lr];
                                    }
                                }
                            }
                        }
                    }
                    if !d.eliminate(r, scratch) {
                        return false;
                    }
                }
                d.pivots_since_refactor = 0;
                true
            }
            Factor::Lu(lu) => lu.refactorize(cols, &self.basic),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, ObjectiveSense};

    fn toy() -> (SparseCols, Model) {
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_continuous("y", 1.0);
        m.add_constraint_le(vec![(x, 2.0), (y, 1.0)], 4.0);
        m.add_constraint_le(vec![(x, 1.0), (y, 3.0)], 6.0);
        (SparseCols::from_model(&m), m)
    }

    fn binv_row(basis: &mut Basis, r: usize) -> Vec<f64> {
        let mut out = Vec::new();
        basis.btran_unit(r, &mut out);
        out
    }

    #[test]
    fn pivoting_tracks_the_true_inverse() {
        for backend in [BasisBackend::DenseInverse, BasisBackend::SparseLu] {
            let (cols, _m) = toy();
            let mut basis = Basis::logical(2, 2, backend);
            let mut w = Vec::new();
            // Bring x (col 0) into row 0: B = [[2, 0], [1, 1]].
            basis.ftran(&cols, 0, &mut w);
            assert_eq!(w, vec![2.0, 1.0]);
            assert!(basis.pivot(2, 0, 0, &w.clone()));
            // B^{-1} = [[0.5, 0], [-0.5, 1]].
            assert_eq!(binv_row(&mut basis, 0), &[0.5, 0.0]);
            assert_eq!(binv_row(&mut basis, 1), &[-0.5, 1.0]);
            // Bring y (col 1) into row 1: B = [[2, 1], [1, 3]], det 5.
            basis.ftran(&cols, 1, &mut w);
            let w2 = w.clone();
            assert!(basis.pivot(2, 1, 1, &w2));
            let expect = [[0.6, -0.2], [-0.2, 0.4]];
            for (r, want) in expect.iter().enumerate() {
                let row = binv_row(&mut basis, r);
                for (c, w) in want.iter().enumerate() {
                    assert!((row[c] - w).abs() < 1e-12, "{backend:?} binv[{r}][{c}]");
                }
            }
            // Refactorisation reproduces the same inverse from scratch.
            let mut scratch = Vec::new();
            assert!(basis.refactorize(&cols, &mut scratch));
            for (r, want) in expect.iter().enumerate() {
                let row = binv_row(&mut basis, r);
                for (c, w) in want.iter().enumerate() {
                    assert!(
                        (row[c] - w).abs() < 1e-12,
                        "{backend:?} refactor binv[{r}][{c}]"
                    );
                }
            }
            // ftran of a dense rhs and btran of a cost vector agree with the
            // explicit inverse.
            let mut out = Vec::new();
            basis.ftran_dense(&[4.0, 6.0], &mut out);
            assert!((out[0] - 1.2).abs() < 1e-12 && (out[1] - 1.6).abs() < 1e-12);
            let mut y = Vec::new();
            basis.btran_costs(&[1.0, 1.0], &mut y);
            assert!((y[0] - 0.4).abs() < 1e-12 && (y[1] - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn vanishing_pivot_is_rejected() {
        for backend in [BasisBackend::DenseInverse, BasisBackend::SparseLu] {
            let (cols, _m) = toy();
            let mut basis = Basis::logical(2, 2, backend);
            let w = vec![0.0, 1.0];
            assert!(!basis.pivot(2, 0, 0, &w));
            // Basis unchanged.
            assert_eq!(basis.basic, vec![2, 3]);
            let _ = &cols;
        }
    }
}
