//! A small linear-programming (LP) and mixed 0/1 integer-programming (ILP)
//! solver.
//!
//! The paper solves its partition-to-GPU mapping problem with a commercial
//! ILP solver (Gurobi). This crate provides the substrate needed to reproduce
//! that step without external dependencies:
//!
//! * [`Model`] — a builder for LP/ILP models: variables (continuous or
//!   binary) with **native bounds**, linear constraints and a linear
//!   objective,
//! * a **bounded-variable revised simplex** for the LP relaxation: sparse
//!   column-major constraint storage, a **sparse LU basis factorisation**
//!   (Markowitz pivoting, product-form eta updates, stability-triggered
//!   refactorisation) with a dense-inverse backend kept for comparison
//!   ([`BasisBackend`]), a primal two-phase method for cold solves and a
//!   dual simplex with **devex pricing** and a **bound-flipping ratio test**
//!   that warm-starts from the previous basis when only bounds changed
//!   ([`simplex`], [`LpSolver`]),
//! * a **presolve pass** — fixed-variable substitution, singleton-row →
//!   bound conversion, empty-row/column elimination — with a postsolve map
//!   back to the original variable space, run before the constraint matrix
//!   is built,
//! * **branch-and-bound** over the binary variables with **best-bound node
//!   ordering** plus early-incumbent dives, incumbent pruning, warm-start
//!   incumbents, node/time budgets, a reported optimality gap and per-node
//!   dual reoptimisation ([`Solver`]) — a branch only tightens one bound, so
//!   the parent basis stays dual feasible and a child relaxation typically
//!   costs a handful of pivots instead of a full solve,
//! * the original dense two-phase tableau, kept as the reference
//!   implementation for equivalence tests and benches ([`dense`]).
//!
//! # Example
//!
//! ```rust
//! use sgmap_ilp::{Model, ObjectiveSense, Solver};
//!
//! # fn main() -> Result<(), sgmap_ilp::IlpError> {
//! // maximise 3x + 2y  s.t.  x + y <= 4, x <= 2, y <= 3, x,y >= 0
//! let mut m = Model::new(ObjectiveSense::Maximize);
//! let x = m.add_continuous("x", 3.0);
//! let y = m.add_continuous("y", 2.0);
//! m.add_constraint_le(vec![(x, 1.0), (y, 1.0)], 4.0);
//! m.add_constraint_le(vec![(x, 1.0)], 2.0);
//! m.add_constraint_le(vec![(y, 1.0)], 3.0);
//! let solution = Solver::new().solve(&m)?;
//! assert!((solution.objective - 10.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basis;
pub mod dense;
mod dual;
mod error;
mod lu;
mod model;
mod presolve;
mod pricing;
mod primal;
pub mod simplex;
mod solver;
mod sparse;
mod workspace;

pub use basis::BasisBackend;
pub use error::IlpError;
pub use model::{ConstraintSense, Model, ObjectiveSense, VarId, VarKind};
pub use simplex::{LpSolution, LpSolver, VarBound};
pub use solver::{Solution, SolutionStatus, SolveStats, Solver, SolverOptions};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, IlpError>;
