//! A small linear-programming (LP) and mixed 0/1 integer-programming (ILP)
//! solver.
//!
//! The paper solves its partition-to-GPU mapping problem with a commercial
//! ILP solver (Gurobi). This crate provides the substrate needed to reproduce
//! that step without external dependencies:
//!
//! * [`Model`] — a builder for LP/ILP models: variables (continuous or
//!   binary), linear constraints and a linear objective,
//! * a dense **two-phase primal simplex** for the LP relaxation
//!   ([`simplex`]),
//! * **branch-and-bound** over the binary variables with incumbent pruning,
//!   warm-start incumbents and node/time budgets ([`Solver`]).
//!
//! The instances produced by the mapping flow are modest (a few hundred
//! binaries, a few thousand rows), which a dense tableau handles comfortably.
//!
//! # Example
//!
//! ```rust
//! use sgmap_ilp::{Model, ObjectiveSense, Solver};
//!
//! # fn main() -> Result<(), sgmap_ilp::IlpError> {
//! // maximise 3x + 2y  s.t.  x + y <= 4, x <= 2, y <= 3, x,y >= 0
//! let mut m = Model::new(ObjectiveSense::Maximize);
//! let x = m.add_continuous("x", 3.0);
//! let y = m.add_continuous("y", 2.0);
//! m.add_constraint_le(vec![(x, 1.0), (y, 1.0)], 4.0);
//! m.add_constraint_le(vec![(x, 1.0)], 2.0);
//! m.add_constraint_le(vec![(y, 1.0)], 3.0);
//! let solution = Solver::new().solve(&m)?;
//! assert!((solution.objective - 10.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod model;
pub mod simplex;
mod solver;

pub use error::IlpError;
pub use model::{ConstraintSense, Model, ObjectiveSense, VarId, VarKind};
pub use solver::{Solution, SolutionStatus, Solver, SolverOptions};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, IlpError>;
