//! Devex pricing weights for the dual simplex.
//!
//! Dantzig pricing ("most violated row leaves") ignores how *scaled* a row
//! is: a row whose inverse-row `ρ_i = e_i'B⁻¹` is huge looks attractive but
//! yields tiny actual progress. Devex (Harris 1973, in the dual-row variant
//! popularised by Forrest–Goldfarb) keeps per-row reference weights `γ_i`
//! approximating `‖ρ_i‖²` and ranks candidate rows by `violation²/γ_i` —
//! steepest-edge quality at a fraction of its cost, because the weights are
//! updated from quantities the iteration computes anyway.
//!
//! After a pivot on leaving row `r` with entering ftran direction `w`
//! (`w_r` is the pivot element):
//!
//! ```text
//! γ_r ← max(γ_r / w_r², 1)
//! γ_i ← max(γ_i, (w_i / w_r)² · γ_r_old)   for i ≠ r, w_i ≠ 0
//! ```
//!
//! The weights start at 1 for the current basis (the *reference framework*)
//! and are reset whenever they grow past [`RESET_LIMIT`], which bounds the
//! approximation error accumulated far from the framework.

/// Reset the reference framework when any weight exceeds this.
const RESET_LIMIT: f64 = 1e10;

/// Per-row devex reference weights of one dual-simplex run.
#[derive(Debug, Clone, Default)]
pub(crate) struct DevexWeights {
    gamma: Vec<f64>,
}

impl DevexWeights {
    /// Starts a fresh reference framework of `m` rows (all weights 1).
    pub(crate) fn reset(&mut self, m: usize) {
        self.gamma.clear();
        self.gamma.resize(m, 1.0);
    }

    /// The pricing score of a row with bound violation `viol`: rows with a
    /// larger `viol²/γ` promise more dual progress per unit step.
    #[inline]
    pub(crate) fn score(&self, row: usize, viol: f64) -> f64 {
        viol * viol / self.gamma[row]
    }

    /// Updates the weights after a pivot on row `r` with entering ftran
    /// direction `w`, resetting the framework when weights explode.
    pub(crate) fn update(&mut self, r: usize, w: &[f64]) {
        let wr = w[r];
        debug_assert!(wr != 0.0);
        let gr = self.gamma[r];
        let inv2 = 1.0 / (wr * wr);
        let mut max_seen = 0.0f64;
        for (i, &wi) in w.iter().enumerate() {
            if i != r && wi != 0.0 {
                let cand = (wi * wi) * inv2 * gr;
                if cand > self.gamma[i] {
                    self.gamma[i] = cand;
                }
                if self.gamma[i] > max_seen {
                    max_seen = self.gamma[i];
                }
            }
        }
        self.gamma[r] = (gr * inv2).max(1.0);
        if self.gamma[r] > max_seen {
            max_seen = self.gamma[r];
        }
        if max_seen > RESET_LIMIT {
            self.reset(w.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_start_flat_and_score_by_violation() {
        let mut dw = DevexWeights::default();
        dw.reset(3);
        assert!(dw.score(0, 2.0) > dw.score(1, 1.0));
        assert_eq!(dw.score(2, 2.0), 4.0);
    }

    #[test]
    fn update_grows_touched_rows_and_clamps_the_pivot_row() {
        let mut dw = DevexWeights::default();
        dw.reset(3);
        // Pivot on row 0 with |w_0| = 0.5: rows hit by a larger |w_i| gain
        // weight, the pivot row is clamped at >= 1.
        dw.update(0, &[0.5, 2.0, 0.0]);
        assert!(dw.score(1, 1.0) < 1.0, "row 1's weight must have grown");
        assert!((dw.score(0, 1.0) - 0.25).abs() < 1e-12, "γ_0 = 1/0.25 = 4");
        assert_eq!(dw.score(2, 1.0), 1.0, "untouched row keeps weight 1");
    }

    #[test]
    fn exploding_weights_reset_the_framework() {
        let mut dw = DevexWeights::default();
        dw.reset(2);
        dw.update(0, &[1e-6, 1.0]);
        // γ_1 would be 1e12 > RESET_LIMIT: everything restarts at 1.
        assert_eq!(dw.score(0, 1.0), 1.0);
        assert_eq!(dw.score(1, 1.0), 1.0);
    }
}
