//! Dense two-phase primal simplex — the original LP core, kept as the
//! reference implementation for the revised bounded-variable simplex in
//! [`crate::workspace`].
//!
//! The equivalence property tests solve random models with both cores and
//! require identical feasibility verdicts and matching objectives; the
//! Criterion benches use it as the dense baseline. It is not used by the
//! branch-and-bound solver anymore.
//!
//! The solver works on the standard form
//!
//! ```text
//! minimise  c'x   subject to   Ax {<=, >=, ==} b,   x >= 0
//! ```
//!
//! Native variable bounds (and the extra branch bounds) are lowered to
//! single-variable constraint rows. Rows are normalised to non-negative
//! right-hand sides; `<=` rows receive a slack variable, `>=` rows a surplus
//! plus an artificial variable, and `==` rows an artificial variable. Phase 1
//! minimises the sum of artificials to find a basic feasible solution, phase
//! 2 minimises the true objective. Dantzig pricing is used with a switch to
//! Bland's rule after a while to guarantee termination.

use crate::error::IlpError;
use crate::model::{Constraint, ConstraintSense, Model, ObjectiveSense};
use crate::simplex::{LpSolution, VarBound, TOL};
use crate::Result;

/// Solves the LP relaxation of `model` with the dense two-phase tableau,
/// treating binary variables as continuous in `[0, 1]`, lowering native
/// bounds to rows and applying the extra `bounds` on top.
///
/// # Errors
///
/// Returns [`IlpError::Infeasible`] or [`IlpError::Unbounded`] when the
/// relaxation has no optimum, and [`IlpError::Numerical`] if the pivoting
/// loop fails to make progress.
pub fn solve_lp(model: &Model, bounds: &[VarBound]) -> Result<LpSolution> {
    model.validate()?;
    let n = model.num_vars();

    // Single-variable rows appended after the model's own constraints:
    // native bounds and branch bounds. The model constraints are read
    // in place — cloning the whole constraint set per call is pure overhead.
    let mut extra: Vec<Constraint> = Vec::with_capacity(2 * model.vars.len() + 2 * bounds.len());
    for (i, v) in model.vars.iter().enumerate() {
        if v.lo > TOL {
            extra.push(Constraint {
                terms: vec![(crate::model::VarId(i), 1.0)],
                sense: ConstraintSense::Ge,
                rhs: v.lo,
            });
        }
        if v.hi.is_finite() {
            extra.push(Constraint {
                terms: vec![(crate::model::VarId(i), 1.0)],
                sense: ConstraintSense::Le,
                rhs: v.hi,
            });
        }
    }
    for b in bounds {
        if b.lo > TOL {
            extra.push(Constraint {
                terms: vec![(crate::model::VarId(b.var), 1.0)],
                sense: ConstraintSense::Ge,
                rhs: b.lo,
            });
        }
        if b.hi.is_finite() {
            extra.push(Constraint {
                terms: vec![(crate::model::VarId(b.var), 1.0)],
                sense: ConstraintSense::Le,
                rhs: b.hi,
            });
        }
    }

    // Objective in minimisation form.
    let mut cost: Vec<f64> = model.vars.iter().map(|v| v.objective).collect();
    let maximize = model.sense == ObjectiveSense::Maximize;
    if maximize {
        for c in cost.iter_mut() {
            *c = -*c;
        }
    }

    let mut tableau = Tableau::build(n, &model.constraints, &extra);
    tableau.phase1()?;
    let objective = tableau.phase2(&cost)?;
    let values = tableau.extract(n);
    Ok(LpSolution {
        values,
        objective: if maximize { -objective } else { objective },
    })
}

/// Dense simplex tableau in canonical form with respect to the current basis.
struct Tableau {
    /// Number of structural variables.
    n_struct: usize,
    /// Total number of columns excluding the RHS.
    n_total: usize,
    /// Index of the first artificial column.
    first_artificial: usize,
    /// Row-major matrix, `m` rows of `n_total + 1` entries (last = RHS).
    a: Vec<f64>,
    /// Number of rows.
    m: usize,
    /// Basic column of each row.
    basis: Vec<usize>,
    /// Scratch: the non-zero entries of the current pivot row, reused across
    /// pivots to keep the row updates O(nnz) without re-allocating.
    pivot_nz: Vec<(u32, f64)>,
}

impl Tableau {
    fn build(n_struct: usize, base: &[Constraint], extra: &[Constraint]) -> Tableau {
        let rows = || base.iter().chain(extra);
        let m = base.len() + extra.len();
        // Count slack/surplus and artificial columns.
        let mut n_slack = 0usize;
        let mut n_art = 0usize;
        for r in rows() {
            // Determine the effective sense after RHS normalisation.
            let flip = r.rhs < 0.0;
            let sense = effective_sense(r.sense, flip);
            match sense {
                ConstraintSense::Le => n_slack += 1,
                ConstraintSense::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                ConstraintSense::Eq => n_art += 1,
            }
        }
        let n_total = n_struct + n_slack + n_art;
        let first_artificial = n_struct + n_slack;
        let width = n_total + 1;
        let mut a = vec![0.0; m * width];
        let mut basis = vec![0usize; m];

        let mut slack_col = n_struct;
        let mut art_col = first_artificial;
        for (i, r) in rows().enumerate() {
            let flip = r.rhs < 0.0;
            let sgn = if flip { -1.0 } else { 1.0 };
            for &(v, coef) in &r.terms {
                a[i * width + v.index()] += sgn * coef;
            }
            a[i * width + n_total] = sgn * r.rhs;
            let sense = effective_sense(r.sense, flip);
            match sense {
                ConstraintSense::Le => {
                    a[i * width + slack_col] = 1.0;
                    basis[i] = slack_col;
                    slack_col += 1;
                }
                ConstraintSense::Ge => {
                    a[i * width + slack_col] = -1.0;
                    slack_col += 1;
                    a[i * width + art_col] = 1.0;
                    basis[i] = art_col;
                    art_col += 1;
                }
                ConstraintSense::Eq => {
                    a[i * width + art_col] = 1.0;
                    basis[i] = art_col;
                    art_col += 1;
                }
            }
        }

        Tableau {
            n_struct,
            n_total,
            first_artificial,
            a,
            m,
            basis,
            pivot_nz: Vec::new(),
        }
    }

    #[inline]
    fn width(&self) -> usize {
        self.n_total + 1
    }

    /// Runs phase 1: minimises the sum of the artificial variables.
    fn phase1(&mut self) -> Result<()> {
        if self.first_artificial == self.n_total {
            return Ok(()); // no artificials, initial basis is feasible
        }
        let mut cost = vec![0.0; self.n_total];
        for c in cost.iter_mut().skip(self.first_artificial) {
            *c = 1.0;
        }
        // Artificial columns start in the basis and only ever need to leave;
        // excluding them from the entering scan avoids pointless churn.
        let obj = self.optimize(&cost, self.first_artificial, false)?;
        if obj > 1e-6 {
            return Err(IlpError::Infeasible);
        }
        // Drive any artificial variable still in the basis (at zero level)
        // out of it, or drop its row if it is redundant.
        for row in 0..self.m {
            if self.basis[row] >= self.first_artificial {
                let width = self.width();
                let mut pivot_col = None;
                for col in 0..self.first_artificial {
                    if self.a[row * width + col].abs() > TOL {
                        pivot_col = Some(col);
                        break;
                    }
                }
                if let Some(col) = pivot_col {
                    self.pivot(row, col);
                } else {
                    // Redundant row: zero it so it can never constrain.
                    for col in 0..width {
                        self.a[row * width + col] = 0.0;
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs phase 2 with the given structural costs and returns the optimal
    /// objective value (minimisation form).
    fn phase2(&mut self, struct_cost: &[f64]) -> Result<f64> {
        let mut cost = vec![0.0; self.n_total];
        cost[..self.n_struct].copy_from_slice(struct_cost);
        // Artificials are excluded from the entering-candidate scan (see the
        // `entering_limit` argument), so their cost stays zero and the huge
        // synthetic penalties that would destroy numerical precision are not
        // needed.
        self.optimize(&cost, self.first_artificial, true)
    }

    /// Primal simplex main loop for the given cost vector. Only columns below
    /// `entering_limit` may enter the basis (phase 2 uses this to lock out
    /// the artificial columns). Returns the final objective value.
    /// `detect_unbounded` controls whether an unbounded ray is an error
    /// (phase 2) or impossible (phase 1, objective bounded below by zero).
    fn optimize(
        &mut self,
        cost: &[f64],
        entering_limit: usize,
        detect_unbounded: bool,
    ) -> Result<f64> {
        let width = self.width();
        // Reduced-cost row, canonicalised against the current basis.
        let mut red = vec![0.0; width];
        red[..self.n_total].copy_from_slice(cost);
        // objective value stored as negative in red[n_total]
        red[self.n_total] = 0.0;
        for row in 0..self.m {
            let b = self.basis[row];
            let cb = cost[b];
            if cb != 0.0 {
                for (r, a) in red.iter_mut().zip(&self.a[row * width..(row + 1) * width]) {
                    *r -= cb * a;
                }
            }
        }

        let max_iters = 50 * (self.m + self.n_total) + 10_000;
        let bland_after = 5 * (self.m + self.n_total) + 1_000;
        for iter in 0..max_iters {
            // Entering column.
            let use_bland = iter > bland_after;
            let mut entering = None;
            if use_bland {
                for (col, &r) in red.iter().enumerate().take(entering_limit) {
                    if r < -TOL {
                        entering = Some(col);
                        break;
                    }
                }
            } else {
                let mut best = -TOL;
                for (col, &r) in red.iter().enumerate().take(entering_limit) {
                    if r < best {
                        best = r;
                        entering = Some(col);
                    }
                }
            }
            let entering = match entering {
                Some(c) => c,
                None => {
                    // Optimal.
                    return Ok(-red[self.n_total]);
                }
            };

            // Leaving row by minimum ratio test.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for row in 0..self.m {
                let coef = self.a[row * width + entering];
                if coef > TOL {
                    let ratio = self.a[row * width + self.n_total] / coef;
                    let better = ratio < best_ratio - TOL
                        || (ratio < best_ratio + TOL
                            && leaving.is_some_and(|l| self.basis[row] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leaving = Some(row);
                    }
                }
            }
            let leaving = match leaving {
                Some(r) => r,
                None => {
                    return if detect_unbounded {
                        Err(IlpError::Unbounded)
                    } else {
                        Err(IlpError::Numerical("phase-1 ray"))
                    };
                }
            };

            self.pivot(leaving, entering);
            // Update the reduced-cost row from the pivot row's non-zeros
            // (same sign-of-zero-only argument as in `pivot`).
            let factor = red[entering];
            if factor != 0.0 {
                for &(c, v) in &self.pivot_nz {
                    red[c as usize] -= factor * v;
                }
            }
        }
        Err(IlpError::Numerical("simplex iteration limit reached"))
    }

    /// Gauss-Jordan pivot on (row, col).
    ///
    /// The row updates skip the pivot row's exact zeros: subtracting
    /// `factor · 0.0` can only change the sign of a zero entry, and no
    /// comparison anywhere in the solver distinguishes `-0.0` from `0.0`,
    /// so the pivot sequence — and hence the returned vertex — is identical
    /// to the dense update. Mapping tableaus are mostly zeros (assignment
    /// rows touch two columns, crossing rows a handful), which makes this
    /// the difference between an O(m·width) and an O(m·nnz) pivot.
    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.width();
        let pivot = self.a[row * width + col];
        debug_assert!(pivot.abs() > TOL, "pivot on a vanishing element");
        let inv = 1.0 / pivot;
        self.pivot_nz.clear();
        for c in 0..width {
            let v = self.a[row * width + c] * inv;
            self.a[row * width + c] = v;
            if v != 0.0 {
                self.pivot_nz.push((c as u32, v));
            }
        }
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let factor = self.a[r * width + col];
            if factor != 0.0 {
                let dst = &mut self.a[r * width..(r + 1) * width];
                for &(c, v) in &self.pivot_nz {
                    dst[c as usize] -= factor * v;
                }
            }
        }
        self.basis[row] = col;
    }

    /// Extracts the values of the first `n` (structural) variables.
    fn extract(&self, n: usize) -> Vec<f64> {
        let width = self.width();
        let mut values = vec![0.0; n];
        for row in 0..self.m {
            let b = self.basis[row];
            if b < n {
                values[b] = self.a[row * width + self.n_total];
            }
        }
        // Clamp away negative dust.
        for v in values.iter_mut() {
            if *v < 0.0 && *v > -1e-6 {
                *v = 0.0;
            }
        }
        values
    }
}

fn effective_sense(sense: ConstraintSense, flipped: bool) -> ConstraintSense {
    if !flipped {
        return sense;
    }
    match sense {
        ConstraintSense::Le => ConstraintSense::Ge,
        ConstraintSense::Ge => ConstraintSense::Le,
        ConstraintSense::Eq => ConstraintSense::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, ObjectiveSense};

    #[test]
    fn native_bounds_are_lowered_to_rows() {
        // min x + y with x in [2, 5], y in [1, inf), x + y >= 4.
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_continuous("y", 1.0);
        m.set_bounds(x, 2.0, 5.0);
        m.set_bounds(y, 1.0, f64::INFINITY);
        m.add_constraint_ge(vec![(x, 1.0), (y, 1.0)], 4.0);
        let s = solve_lp(&m, &[]).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-6);
        assert!(s.values[x.index()] >= 2.0 - 1e-6);
        assert!(s.values[y.index()] >= 1.0 - 1e-6);
    }

    #[test]
    fn maximisation_with_slack_only() {
        // max 3x + 2y s.t. x + y <= 4, x <= 2, y <= 3  =>  x=2, y=2, obj=10.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x = m.add_continuous("x", 3.0);
        let y = m.add_continuous("y", 2.0);
        m.add_constraint_le(vec![(x, 1.0), (y, 1.0)], 4.0);
        m.add_constraint_le(vec![(x, 1.0)], 2.0);
        m.add_constraint_le(vec![(y, 1.0)], 3.0);
        let s = solve_lp(&m, &[]).unwrap();
        assert!((s.objective - 10.0).abs() < 1e-6);
        assert!((s.values[x.index()] - 2.0).abs() < 1e-6);
        assert!((s.values[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn minimisation_with_ge_rows_needs_phase1() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1  =>  x=4 wait: cheapest is x.
        // obj coefficients: x cheaper per unit, so x=4,y=0? x>=1 satisfied.
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 2.0);
        let y = m.add_continuous("y", 3.0);
        m.add_constraint_ge(vec![(x, 1.0), (y, 1.0)], 4.0);
        m.add_constraint_ge(vec![(x, 1.0)], 1.0);
        let s = solve_lp(&m, &[]).unwrap();
        assert!((s.objective - 8.0).abs() < 1e-6);
        assert!((s.values[x.index()] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints_are_honoured() {
        // min x + y s.t. x + 2y == 6, x - y == 0  => x = y = 2, obj 4.
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_continuous("y", 1.0);
        m.add_constraint_eq(vec![(x, 1.0), (y, 2.0)], 6.0);
        m.add_constraint_eq(vec![(x, 1.0), (y, -1.0)], 0.0);
        let s = solve_lp(&m, &[]).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-6);
        assert!((s.values[x.index()] - 2.0).abs() < 1e-6);
        assert!((s.values[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_model_is_detected() {
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        m.add_constraint_le(vec![(x, 1.0)], 1.0);
        m.add_constraint_ge(vec![(x, 1.0)], 2.0);
        assert_eq!(solve_lp(&m, &[]).unwrap_err(), IlpError::Infeasible);
    }

    #[test]
    fn unbounded_model_is_detected() {
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_continuous("y", 1.0);
        m.add_constraint_ge(vec![(x, 1.0), (y, -1.0)], 0.0);
        assert_eq!(solve_lp(&m, &[]).unwrap_err(), IlpError::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalised() {
        // x - y <= -1  (i.e. y >= x + 1), minimise y with x >= 0.
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 0.0);
        let y = m.add_continuous("y", 1.0);
        m.add_constraint_le(vec![(x, 1.0), (y, -1.0)], -1.0);
        let s = solve_lp(&m, &[]).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6);
        assert!((s.values[y.index()] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn branch_bounds_restrict_variables() {
        // max x + y s.t. x + y <= 3, both binary-relaxed; force x = 0.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x = m.add_binary("x", 2.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint_le(vec![(x, 1.0), (y, 1.0)], 3.0);
        let free = solve_lp(&m, &[]).unwrap();
        assert!((free.objective - 3.0).abs() < 1e-6);
        let forced = solve_lp(
            &m,
            &[VarBound {
                var: x.index(),
                lo: 0.0,
                hi: 0.0,
            }],
        )
        .unwrap();
        assert!((forced.objective - 1.0).abs() < 1e-6);
        assert!(forced.values[x.index()].abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; mostly checks that pivoting terminates.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x1 = m.add_continuous("x1", 10.0);
        let x2 = m.add_continuous("x2", -57.0);
        let x3 = m.add_continuous("x3", -9.0);
        let x4 = m.add_continuous("x4", -24.0);
        m.add_constraint_le(vec![(x1, 0.5), (x2, -5.5), (x3, -2.5), (x4, 9.0)], 0.0);
        m.add_constraint_le(vec![(x1, 0.5), (x2, -1.5), (x3, -0.5), (x4, 1.0)], 0.0);
        m.add_constraint_le(vec![(x1, 1.0)], 1.0);
        let s = solve_lp(&m, &[]).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-5);
    }
}
