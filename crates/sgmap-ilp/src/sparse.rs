//! Sparse column-major storage of the constraint matrix.
//!
//! The matrix is built **once** per model from [`Model::column_views`] and
//! shared (read-only) across every LP solve of a branch-and-bound search —
//! branch bounds are native variable bounds, so the matrix never changes.
//!
//! Columns are split in two ranges:
//!
//! * `0 .. n_struct` — the model's structural variables, stored explicitly,
//! * `n_struct .. n_struct + m` — one *logical* variable per row, an
//!   implicit unit column `e_i` whose bounds encode the row sense
//!   (`<=` → `[0, ∞)`, `>=` → `(-∞, 0]`, `==` → `[0, 0]`), turning every row
//!   into the equality `a'x + s = b`.

use crate::model::Model;

/// Immutable sparse column-major constraint matrix (structural columns).
#[derive(Debug, Clone)]
pub(crate) struct SparseCols {
    /// Number of rows.
    pub(crate) m: usize,
    /// Number of structural columns.
    pub(crate) n_struct: usize,
    col_ptr: Vec<u32>,
    row_ix: Vec<u32>,
    val: Vec<f64>,
}

impl SparseCols {
    /// Builds the matrix from the model's constraint rows.
    pub(crate) fn from_model(model: &Model) -> SparseCols {
        let cols = model.column_views();
        let n_struct = cols.len();
        let nnz: usize = cols.iter().map(Vec::len).sum();
        let mut col_ptr = Vec::with_capacity(n_struct + 1);
        let mut row_ix = Vec::with_capacity(nnz);
        let mut val = Vec::with_capacity(nnz);
        col_ptr.push(0u32);
        for col in &cols {
            for &(r, v) in col {
                if v != 0.0 {
                    row_ix.push(r);
                    val.push(v);
                }
            }
            col_ptr.push(row_ix.len() as u32);
        }
        SparseCols {
            m: model.num_constraints(),
            n_struct,
            col_ptr,
            row_ix,
            val,
        }
    }

    /// Total number of columns including the logical one of each row.
    #[inline]
    pub(crate) fn n_total(&self) -> usize {
        self.n_struct + self.m
    }

    /// The non-zero `(row, value)` entries of a structural column.
    ///
    /// Logical columns (`j >= n_struct`) are the implicit unit vectors and
    /// must be special-cased by the caller (see [`SparseCols::logical_row`]).
    #[inline]
    pub(crate) fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        debug_assert!(j < self.n_struct);
        let lo = self.col_ptr[j] as usize;
        let hi = self.col_ptr[j + 1] as usize;
        self.row_ix[lo..hi]
            .iter()
            .zip(&self.val[lo..hi])
            .map(|(&r, &v)| (r as usize, v))
    }

    /// The row of a logical column, or `None` for a structural column.
    #[inline]
    pub(crate) fn logical_row(&self, j: usize) -> Option<usize> {
        (j >= self.n_struct).then(|| j - self.n_struct)
    }

    /// Dot product of a dense row vector with column `j` (logical columns
    /// included).
    #[inline]
    pub(crate) fn dot_col(&self, row_vec: &[f64], j: usize) -> f64 {
        match self.logical_row(j) {
            Some(r) => row_vec[r],
            None => self.col(j).map(|(r, v)| row_vec[r] * v).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, ObjectiveSense};

    #[test]
    fn columns_merge_duplicates_and_keep_row_order() {
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_continuous("y", 1.0);
        // Row 0 mentions x twice: the terms must merge.
        m.add_constraint_le(vec![(x, 1.0), (y, 2.0), (x, 3.0)], 5.0);
        m.add_constraint_ge(vec![(y, -1.0)], -2.0);
        let s = SparseCols::from_model(&m);
        assert_eq!(s.m, 2);
        assert_eq!(s.n_struct, 2);
        assert_eq!(s.n_total(), 4);
        let cx: Vec<_> = s.col(x.index()).collect();
        assert_eq!(cx, vec![(0, 4.0)]);
        let cy: Vec<_> = s.col(y.index()).collect();
        assert_eq!(cy, vec![(0, 2.0), (1, -1.0)]);
        // Logical columns are unit vectors.
        assert_eq!(s.logical_row(2), Some(0));
        assert_eq!(s.logical_row(3), Some(1));
        assert_eq!(s.logical_row(1), None);
        // dot_col sees both kinds.
        let row = [10.0, 100.0];
        assert_eq!(s.dot_col(&row, x.index()), 40.0);
        assert_eq!(s.dot_col(&row, y.index()), 20.0 - 100.0);
        assert_eq!(s.dot_col(&row, 2), 10.0);
        assert_eq!(s.dot_col(&row, 3), 100.0);
    }
}
