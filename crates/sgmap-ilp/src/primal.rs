//! Bounded-variable primal simplex with a composite phase 1.
//!
//! One loop serves both phases: while any basic variable violates its
//! bounds, pricing uses the phase-1 costs (−1 for a basic below its lower
//! bound, +1 above its upper — the gradient of the total violation); once
//! the basis is feasible, pricing switches to the true costs. The ratio test
//! follows the textbook composite rules: a feasible basic blocks at either
//! bound, a violated basic blocks at the bound it is approaching (where it
//! turns feasible), the entering variable blocks at its own opposite bound
//! (a *bound flip* that leaves the basis unchanged).
//!
//! Pricing is Dantzig's rule with lowest-index tie-breaking and a switch to
//! Bland's rule after a stall threshold, so the pivot sequence is fully
//! deterministic.

use std::time::Instant;

use crate::basis::VarState;
use crate::workspace::{LoopEnd, LpWorkspace, DUAL_TOL, PIVOT_TOL, PRIMAL_TOL, STABLE_PIVOT_REL};

/// What blocks the entering variable's march.
enum Block {
    /// Nothing does: the problem is unbounded along this direction.
    None,
    /// Its own opposite bound: flip states, keep the basis.
    Flip,
    /// A basic variable reaches a bound: pivot on this row, leaving towards
    /// the given state.
    Row(usize, VarState),
}

impl LpWorkspace {
    /// Runs the composite primal simplex to optimality.
    pub(crate) fn primal_simplex(&mut self, deadline: Option<Instant>) -> LoopEnd {
        let m = self.cols.m;
        let n_total = self.cols.n_total();
        let cap = self.iteration_cap();
        let bland_after = self.bland_threshold();

        for iter in 0..cap {
            if Self::past_deadline(deadline) {
                return LoopEnd::TimeLimit;
            }
            if self.basis.wants_refactor() && !self.refactor_and_sync() {
                return LoopEnd::Stalled;
            }

            // Phase-1 costs from the current bound violations: one btran of
            // the violation-sign vector yields the phase-1 simplex
            // multipliers.
            let mut infeasible = false;
            let mut sign = std::mem::take(&mut self.rho);
            sign.clear();
            sign.resize(m, 0.0);
            for (i, s) in sign.iter_mut().enumerate() {
                let bv = self.basis.basic[i] as usize;
                let v = self.xb[i];
                if v < self.lo[bv] - PRIMAL_TOL {
                    *s = -1.0;
                    infeasible = true;
                } else if v > self.hi[bv] + PRIMAL_TOL {
                    *s = 1.0;
                    infeasible = true;
                }
            }
            let mut y = std::mem::take(&mut self.y);
            if infeasible {
                self.basis.btran_dense(&sign, &mut y);
            } else {
                self.basis.btran_costs(&self.cost, &mut y);
            }
            self.rho = sign;

            // Price the nonbasic columns.
            let use_bland = iter > bland_after;
            let mut entering: Option<(usize, f64, f64)> = None; // (col, d, score)
            for j in 0..n_total {
                if let VarState::Basic(_) = self.basis.state[j] {
                    continue;
                }
                if self.lo[j] == self.hi[j] {
                    continue; // fixed: can never move
                }
                let cj = if infeasible {
                    0.0
                } else {
                    self.cost.get(j).copied().unwrap_or(0.0)
                };
                let dj = cj - self.cols.dot_col(&y, j);
                let improving = match self.basis.state[j] {
                    VarState::AtLower => dj < -DUAL_TOL,
                    VarState::AtUpper => dj > DUAL_TOL,
                    VarState::Basic(_) => false,
                };
                if !improving {
                    continue;
                }
                if use_bland {
                    entering = Some((j, dj, 0.0));
                    break;
                }
                let score = dj.abs();
                match entering {
                    Some((_, _, best)) if score <= best => {}
                    _ => entering = Some((j, dj, score)),
                }
            }
            self.y = y;

            let (q, _dq) = match entering {
                Some((j, dj, _)) => (j, dj),
                None => {
                    return if infeasible {
                        LoopEnd::Infeasible
                    } else {
                        LoopEnd::Done
                    };
                }
            };
            // +1 when the entering variable increases off its lower bound.
            let sigma = match self.basis.state[q] {
                VarState::AtLower => 1.0,
                _ => -1.0,
            };

            let mut w = std::mem::take(&mut self.w);
            self.basis.ftran(&self.cols, q, &mut w);

            // Ratio test.
            let span = self.hi[q] - self.lo[q];
            let mut t_best = if span.is_finite() {
                span
            } else {
                f64::INFINITY
            };
            let mut block = if span.is_finite() {
                Block::Flip
            } else {
                Block::None
            };
            let mut block_bv = usize::MAX;
            for (i, &wi) in w.iter().enumerate() {
                if wi.abs() <= PIVOT_TOL {
                    continue;
                }
                let rate = -sigma * wi; // d(xb_i)/dt
                let bv = self.basis.basic[i] as usize;
                let (l, h) = (self.lo[bv], self.hi[bv]);
                let v = self.xb[i];
                let (t_i, to) = if v < l - PRIMAL_TOL {
                    if rate > 0.0 {
                        ((l - v) / rate, VarState::AtLower)
                    } else {
                        continue;
                    }
                } else if v > h + PRIMAL_TOL {
                    if rate < 0.0 {
                        ((h - v) / rate, VarState::AtUpper)
                    } else {
                        continue;
                    }
                } else if rate > 0.0 && h.is_finite() {
                    (((h - v) / rate).max(0.0), VarState::AtUpper)
                } else if rate < 0.0 && l.is_finite() {
                    (((l - v) / rate).max(0.0), VarState::AtLower)
                } else {
                    continue;
                };
                let better = t_i < t_best - 1e-9
                    || (t_i < t_best + 1e-9 && matches!(block, Block::Row(..)) && bv < block_bv)
                    || (t_i <= t_best && matches!(block, Block::Flip | Block::None));
                if better {
                    t_best = t_i;
                    block = Block::Row(i, to);
                    block_bv = bv;
                }
            }

            self.stats.iterations += 1;
            match block {
                Block::None => {
                    self.w = w;
                    // A violated basic always blocks an infeasibility-
                    // reducing direction, so an unbounded ray in phase 1 is
                    // numerical breakdown, not a certificate.
                    return if infeasible {
                        LoopEnd::Stalled
                    } else {
                        LoopEnd::Unbounded
                    };
                }
                Block::Flip => {
                    let delta = sigma * span;
                    for (i, &wi) in w.iter().enumerate() {
                        if wi != 0.0 {
                            self.xb[i] -= delta * wi;
                        }
                    }
                    self.basis.state[q] = match self.basis.state[q] {
                        VarState::AtLower => VarState::AtUpper,
                        _ => VarState::AtLower,
                    };
                    self.stats.bound_flips += 1;
                    self.w = w;
                }
                Block::Row(r, leave_to) => {
                    if !self.basis.is_fresh() {
                        // A pivot that is tiny relative to its direction may
                        // be eta-file drift masking a true zero; refactorise
                        // and re-price before trusting it (see
                        // [`STABLE_PIVOT_REL`]).
                        let winf = w.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
                        if w[r].abs() < STABLE_PIVOT_REL * winf {
                            self.w = w;
                            if !self.refactor_and_sync() {
                                return LoopEnd::Stalled;
                            }
                            continue;
                        }
                    }
                    let entering_value = self.nb_value(q) + sigma * t_best;
                    let leaving = self.basis.basic[r] as usize;
                    if !self.basis.pivot(m, r, q, &w) {
                        self.w = w;
                        // The pivot element collapsed: resynchronise and try
                        // a different path next iteration.
                        if !self.refactor_and_sync() {
                            return LoopEnd::Stalled;
                        }
                        continue;
                    }
                    for (i, &wi) in w.iter().enumerate() {
                        if i != r && wi != 0.0 {
                            self.xb[i] -= sigma * t_best * wi;
                        }
                    }
                    self.xb[r] = entering_value;
                    self.basis.state[leaving] = leave_to;
                    self.w = w;
                }
            }
        }
        LoopEnd::Stalled
    }
}
