//! Model builder for linear and 0/1 integer programs.
//!
//! All variables are non-negative. Binary variables are additionally
//! constrained to be at most one and are required to take integral values by
//! the branch-and-bound [`Solver`](crate::Solver).

use std::fmt;

use crate::error::IlpError;
use crate::Result;

/// Identifier of a decision variable within a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Zero-based index of the variable.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// The domain of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// A continuous variable in `[0, +inf)`.
    Continuous,
    /// A binary variable in `{0, 1}`.
    Binary,
}

/// Direction of optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveSense {
    /// Minimise the objective function.
    Minimize,
    /// Maximise the objective function.
    Maximize,
}

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintSense {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub(crate) name: String,
    pub(crate) kind: VarKind,
    pub(crate) objective: f64,
    /// Native lower bound (`x >= lo`); finite.
    pub(crate) lo: f64,
    /// Native upper bound (`x <= hi`); may be `+inf`.
    pub(crate) hi: f64,
}

/// A linear constraint `sum(coef * var) (<=|>=|==) rhs`.
#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub(crate) terms: Vec<(VarId, f64)>,
    pub(crate) sense: ConstraintSense,
    pub(crate) rhs: f64,
}

/// A linear / 0-1 integer programming model.
///
/// Build the model by adding variables and constraints, then pass it to a
/// [`Solver`](crate::Solver).
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: ObjectiveSense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model with the given optimisation direction.
    pub fn new(sense: ObjectiveSense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Adds a continuous variable in `[0, +inf)` with the given objective
    /// coefficient and returns its id.
    pub fn add_continuous(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        self.add_var(name, VarKind::Continuous, objective)
    }

    /// Adds a binary variable with the given objective coefficient and
    /// returns its id.
    pub fn add_binary(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        self.add_var(name, VarKind::Binary, objective)
    }

    fn add_var(&mut self, name: impl Into<String>, kind: VarKind, objective: f64) -> VarId {
        let id = VarId(self.vars.len());
        let (lo, hi) = match kind {
            VarKind::Continuous => (0.0, f64::INFINITY),
            VarKind::Binary => (0.0, 1.0),
        };
        self.vars.push(Variable {
            name: name.into(),
            kind,
            objective,
            lo,
            hi,
        });
        id
    }

    /// Overrides the native bounds of a variable (`lo <= x <= hi`).
    ///
    /// Bounds are handled natively by the bounded-variable simplex — they do
    /// not become constraint rows. All variables in this crate are
    /// non-negative, so the lower bound must be finite and `>= 0`; the upper
    /// bound may be `f64::INFINITY`. Tightening a binary variable's bounds
    /// within `[0, 1]` is allowed; the integrality requirement is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model, if `lo > hi`, or if
    /// `lo` is negative or not finite.
    pub fn set_bounds(&mut self, id: VarId, lo: f64, hi: f64) {
        assert!(
            lo.is_finite() && lo >= 0.0,
            "lower bound of {id} must be finite and non-negative, got {lo}"
        );
        assert!(lo <= hi, "empty bound range [{lo}, {hi}] for {id}");
        let v = &mut self.vars[id.0];
        v.lo = lo;
        v.hi = hi;
    }

    /// Returns the native `(lo, hi)` bounds of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    pub fn var_bounds(&self, id: VarId) -> (f64, f64) {
        (self.vars[id.0].lo, self.vars[id.0].hi)
    }

    /// Adds a constraint `sum(coef * var) <= rhs`.
    pub fn add_constraint_le(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.add_constraint(terms, ConstraintSense::Le, rhs);
    }

    /// Adds a constraint `sum(coef * var) >= rhs`.
    pub fn add_constraint_ge(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.add_constraint(terms, ConstraintSense::Ge, rhs);
    }

    /// Adds a constraint `sum(coef * var) == rhs`.
    pub fn add_constraint_eq(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.add_constraint(terms, ConstraintSense::Eq, rhs);
    }

    /// Adds a constraint with an explicit sense.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, f64)>, sense: ConstraintSense, rhs: f64) {
        self.constraints.push(Constraint { terms, sense, rhs });
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints (not counting the implicit `x <= 1` bounds on
    /// binary variables).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    pub fn var_name(&self, id: VarId) -> &str {
        &self.vars[id.0].name
    }

    /// Kind (continuous/binary) of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    pub fn var_kind(&self, id: VarId) -> VarKind {
        self.vars[id.0].kind
    }

    /// Objective coefficient of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    pub fn objective_coefficient(&self, id: VarId) -> f64 {
        self.vars[id.0].objective
    }

    /// Ids of all binary variables in the model.
    pub fn binary_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Binary)
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Direction of optimisation.
    pub fn objective_sense(&self) -> ObjectiveSense {
        self.sense
    }

    /// Evaluates the objective function at the given point.
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than the number of variables.
    pub fn evaluate_objective(&self, values: &[f64]) -> f64 {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| v.objective * values[i])
            .sum()
    }

    /// Checks whether the given point satisfies every constraint (and the
    /// binary bounds) within tolerance `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() < self.vars.len() {
            return false;
        }
        for (i, v) in self.vars.iter().enumerate() {
            if values[i] < v.lo - tol || values[i] > v.hi + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, coef)| coef * values[v.0]).sum();
            let ok = match c.sense {
                ConstraintSense::Le => lhs <= c.rhs + tol,
                ConstraintSense::Ge => lhs >= c.rhs - tol,
                ConstraintSense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Column views of the constraint matrix: for every variable, the
    /// `(row, coefficient)` pairs of the rows it appears in, with duplicate
    /// terms within a row merged. Rows appear in increasing order. This is
    /// the input of the sparse column-major store the revised simplex works
    /// on.
    pub(crate) fn column_views(&self) -> Vec<Vec<(u32, f64)>> {
        let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); self.vars.len()];
        for (r, c) in self.constraints.iter().enumerate() {
            for &(v, coef) in &c.terms {
                let col = &mut cols[v.0];
                // Rows are visited in order, so a duplicate term of the same
                // row is always the last entry.
                match col.last_mut() {
                    Some((row, val)) if *row == r as u32 => *val += coef,
                    _ => col.push((r as u32, coef)),
                }
            }
        }
        cols
    }

    /// Validates that every constraint references only variables that belong
    /// to the model.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::EmptyModel`] or [`IlpError::UnknownVariable`].
    pub fn validate(&self) -> Result<()> {
        if self.vars.is_empty() {
            return Err(IlpError::EmptyModel);
        }
        for c in &self.constraints {
            for &(v, _) in &c.terms {
                if v.0 >= self.vars.len() {
                    return Err(IlpError::UnknownVariable(v.0));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_builder_accumulates_vars_and_constraints() {
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_binary("y", -2.0);
        m.add_constraint_le(vec![(x, 1.0), (y, 3.0)], 5.0);
        m.add_constraint_eq(vec![(y, 1.0)], 1.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 2);
        assert_eq!(m.var_name(x), "x");
        assert_eq!(m.var_kind(y), VarKind::Binary);
        assert_eq!(m.objective_coefficient(y), -2.0);
        assert_eq!(m.binary_vars(), vec![y]);
        m.validate().unwrap();
    }

    #[test]
    fn feasibility_check_covers_all_senses() {
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint_le(vec![(x, 1.0)], 4.0);
        m.add_constraint_ge(vec![(x, 1.0), (y, 1.0)], 2.0);
        m.add_constraint_eq(vec![(y, 1.0)], 1.0);
        assert!(m.is_feasible(&[1.5, 1.0], 1e-9));
        assert!(!m.is_feasible(&[5.0, 1.0], 1e-9)); // violates <=
        assert!(!m.is_feasible(&[0.5, 0.0], 1e-9)); // violates >= and ==
        assert!(!m.is_feasible(&[-0.1, 1.0], 1e-9)); // negative
        assert!(!m.is_feasible(&[1.0, 1.5], 1e-9)); // binary above 1
    }

    #[test]
    fn validate_rejects_empty_and_foreign_vars() {
        let m = Model::new(ObjectiveSense::Minimize);
        assert_eq!(m.validate(), Err(IlpError::EmptyModel));
        let mut m = Model::new(ObjectiveSense::Minimize);
        let _x = m.add_continuous("x", 1.0);
        m.add_constraint_le(vec![(VarId(7), 1.0)], 1.0);
        assert_eq!(m.validate(), Err(IlpError::UnknownVariable(7)));
    }
}
