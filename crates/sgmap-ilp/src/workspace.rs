//! The shared LP workspace of the revised bounded-variable simplex.
//!
//! One `LpWorkspace` is built per model and threaded through an entire
//! branch-and-bound search. The constraint matrix is stored once in sparse
//! column-major form ([`SparseCols`]); variable bounds — the model's native
//! bounds, the `[0, 1]` box of binaries and the branch restrictions — are
//! handled natively as nonbasic-at-lower/at-upper states, so a node never
//! adds rows and never rebuilds anything.
//!
//! A solve picks one of two paths:
//!
//! * **cold** — all-logical basis, bounded-variable *primal* simplex with a
//!   composite phase 1 (minimise the sum of bound violations of the basic
//!   variables) followed by phase 2 on the true costs ([`crate::primal`]);
//! * **warm** — reuse the final basis of the previous solve: branch bounds
//!   only tighten variable bounds, which preserves dual feasibility of the
//!   parent basis, so a bounded-variable *dual* simplex reoptimises in a
//!   handful of pivots ([`crate::dual`]).
//!
//! The basis matrix itself lives behind the [`Basis`] facade and is factored
//! either as a sparse LU with eta updates (the default) or as the legacy
//! dense inverse (kept for reference benchmarks and equivalence tests) —
//! see [`BasisBackend`].
//!
//! Both paths use fixed deterministic pivoting rules (devex/Dantzig pricing
//! with lowest-index tie-breaking, Bland's rule after a stall threshold), so
//! the same model and bounds always reproduce the same vertex, independent
//! of thread count or load.

use std::time::Instant;

use crate::basis::{Basis, BasisBackend, VarState};
use crate::error::IlpError;
use crate::model::{ConstraintSense, Model, ObjectiveSense};
use crate::pricing::DevexWeights;
use crate::simplex::{LpSolution, VarBound, TOL};
use crate::sparse::SparseCols;
use crate::Result;

/// Counters of the LP engine, accumulated across every solve of a workspace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct LpStats {
    /// Simplex iterations: pivots and bound flips, primal and dual.
    pub(crate) iterations: u64,
    /// Solves answered by warm-started dual reoptimisation.
    pub(crate) warm_starts: u64,
    /// Solves that ran the primal simplex from the all-logical basis.
    pub(crate) cold_solves: u64,
    /// Basis refactorisations (periodic and stability-triggered rebuilds).
    pub(crate) refactorizations: u64,
    /// Nonbasic bound flips (primal flip steps + dual bound-flipping ratio
    /// test passes).
    pub(crate) bound_flips: u64,
}

/// How an LP solve ended.
#[derive(Debug, Clone)]
pub(crate) enum LpOutcome {
    /// An optimal basic solution.
    Optimal(LpSolution),
    /// The bounds and rows admit no point.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
    /// The deadline expired mid-solve.
    TimeLimit,
    /// Pivoting failed to make progress even after a cold restart.
    Numerical(&'static str),
}

impl LpOutcome {
    /// Converts the outcome into the crate's `Result` shape (time limits
    /// surface as a numerical failure — callers that pass a deadline match
    /// on the outcome directly instead).
    pub(crate) fn into_result(self) -> Result<LpSolution> {
        match self {
            LpOutcome::Optimal(s) => Ok(s),
            LpOutcome::Infeasible => Err(IlpError::Infeasible),
            LpOutcome::Unbounded => Err(IlpError::Unbounded),
            LpOutcome::TimeLimit => Err(IlpError::Numerical("lp deadline expired")),
            LpOutcome::Numerical(msg) => Err(IlpError::Numerical(msg)),
        }
    }
}

/// Where a simplex loop stopped (shared by the primal and dual drivers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LoopEnd {
    /// Optimality (or, for phase-1, feasibility) proven.
    Done,
    /// Primal ray found (phase-2 primal only).
    Unbounded,
    /// No improving direction while still infeasible.
    Infeasible,
    /// The deadline expired.
    TimeLimit,
    /// Iteration cap or numerical breakdown — caller should fall back.
    Stalled,
}

/// Feasibility tolerance on variable bounds.
pub(crate) const PRIMAL_TOL: f64 = TOL;
/// Zero tolerance on reduced costs.
pub(crate) const DUAL_TOL: f64 = TOL;
/// Smallest usable pivot element.
pub(crate) const PIVOT_TOL: f64 = 1e-9;

/// Minimum pivot magnitude relative to the largest entry of its ftran
/// direction for a pivot computed through *stale* (updated) factors. A
/// relatively tiny pivot through an eta file may be pure drift — the true
/// element can be zero, and pivoting on it makes the recorded basis
/// genuinely singular. Callers refactorise and re-price instead.
pub(crate) const STABLE_PIVOT_REL: f64 = 1e-7;

/// The revised-simplex workspace shared across branch-and-bound nodes.
#[derive(Debug, Clone)]
pub(crate) struct LpWorkspace {
    pub(crate) cols: SparseCols,
    /// Right-hand sides (row equalities `a'x + s = b`).
    pub(crate) b: Vec<f64>,
    /// Structural costs in minimisation form.
    pub(crate) cost: Vec<f64>,
    maximize: bool,
    /// Model bounds (structural) and row-sense bounds (logical).
    base_lo: Vec<f64>,
    base_hi: Vec<f64>,
    /// Bounds of the current node.
    pub(crate) lo: Vec<f64>,
    pub(crate) hi: Vec<f64>,
    pub(crate) basis: Basis,
    /// Values of the basic variables, row-aligned.
    pub(crate) xb: Vec<f64>,
    /// Whether `basis` carries a usable basis from a previous solve.
    factored: bool,
    /// Devex reference weights of the dual simplex.
    pub(crate) devex: DevexWeights,
    // Scratch buffers, reused across iterations and solves.
    pub(crate) w: Vec<f64>,
    pub(crate) y: Vec<f64>,
    pub(crate) d: Vec<f64>,
    pub(crate) alpha: Vec<f64>,
    /// Pivot row `ρ = e_r'B⁻¹` of the dual simplex.
    pub(crate) rho: Vec<f64>,
    u: Vec<f64>,
    pub(crate) stats: LpStats,
}

impl LpWorkspace {
    /// Builds the standard-form workspace with the default (sparse LU)
    /// basis backend. The model must already be validated.
    pub(crate) fn new(model: &Model) -> LpWorkspace {
        LpWorkspace::with_backend(model, BasisBackend::SparseLu)
    }

    /// Builds the standard-form workspace with an explicit basis backend.
    pub(crate) fn with_backend(model: &Model, backend: BasisBackend) -> LpWorkspace {
        let cols = SparseCols::from_model(model);
        let m = cols.m;
        let n_struct = cols.n_struct;
        let n_total = cols.n_total();
        let maximize = model.sense == ObjectiveSense::Maximize;
        let mut cost: Vec<f64> = model.vars.iter().map(|v| v.objective).collect();
        if maximize {
            for c in cost.iter_mut() {
                *c = -*c;
            }
        }
        let mut base_lo = Vec::with_capacity(n_total);
        let mut base_hi = Vec::with_capacity(n_total);
        for v in &model.vars {
            base_lo.push(v.lo);
            base_hi.push(v.hi);
        }
        let mut b = Vec::with_capacity(m);
        for c in &model.constraints {
            b.push(c.rhs);
            let (l, h) = match c.sense {
                ConstraintSense::Le => (0.0, f64::INFINITY),
                ConstraintSense::Ge => (f64::NEG_INFINITY, 0.0),
                ConstraintSense::Eq => (0.0, 0.0),
            };
            base_lo.push(l);
            base_hi.push(h);
        }
        LpWorkspace {
            basis: Basis::logical(m, n_struct, backend),
            b,
            cost,
            maximize,
            lo: base_lo.clone(),
            hi: base_hi.clone(),
            base_lo,
            base_hi,
            xb: vec![0.0; m],
            factored: false,
            devex: DevexWeights::default(),
            w: Vec::new(),
            y: Vec::new(),
            d: Vec::new(),
            alpha: Vec::new(),
            rho: Vec::new(),
            u: Vec::new(),
            stats: LpStats::default(),
            cols,
        }
    }

    /// Solves the LP under `bounds`, warm-starting from the previous basis
    /// when one is available.
    pub(crate) fn solve(&mut self, bounds: &[VarBound], deadline: Option<Instant>) -> LpOutcome {
        // Install the node's bounds: the base intersected with the extras.
        self.lo.copy_from_slice(&self.base_lo);
        self.hi.copy_from_slice(&self.base_hi);
        for vb in bounds {
            let j = vb.var;
            if vb.lo > self.lo[j] {
                self.lo[j] = vb.lo;
            }
            if vb.hi < self.hi[j] {
                self.hi[j] = vb.hi;
            }
            if self.lo[j] > self.hi[j] + PRIMAL_TOL {
                return LpOutcome::Infeasible;
            }
        }

        if self.factored {
            match self.try_warm(deadline) {
                Some(outcome) => return outcome,
                None => {
                    // Dual reoptimisation could not run or stalled: restart
                    // cold below.
                }
            }
        }
        self.solve_cold(deadline)
    }

    /// Attempts the warm path: remap nonbasic states so the inherited basis
    /// is dual feasible under the new bounds, recompute the basic values and
    /// reoptimise with the dual simplex. Returns `None` when the caller
    /// should fall back to a cold solve.
    fn try_warm(&mut self, deadline: Option<Instant>) -> Option<LpOutcome> {
        self.compute_reduced_costs();
        // Remap every nonbasic column onto a bound that is both finite and
        // consistent with the sign of its reduced cost. Branch bounds only
        // fix or unfix binaries (finite on both sides), so this almost never
        // fails; the fallback covers pathological drift.
        let n_total = self.cols.n_total();
        for j in 0..n_total {
            if let VarState::Basic(_) = self.basis.state[j] {
                continue;
            }
            let (l, h) = (self.lo[j], self.hi[j]);
            let dj = self.d[j];
            let state = &mut self.basis.state[j];
            if l == h {
                *state = VarState::AtLower;
            } else if dj > DUAL_TOL {
                if !l.is_finite() {
                    return None;
                }
                *state = VarState::AtLower;
            } else if dj < -DUAL_TOL {
                if !h.is_finite() {
                    return None;
                }
                *state = VarState::AtUpper;
            } else {
                // Degenerate reduced cost: keep the current side when its
                // bound exists, otherwise take the finite one.
                match *state {
                    VarState::AtLower if l.is_finite() => {}
                    VarState::AtUpper if h.is_finite() => {}
                    _ if l.is_finite() => *state = VarState::AtLower,
                    _ if h.is_finite() => *state = VarState::AtUpper,
                    _ => return None,
                }
            }
        }
        self.recompute_xb();
        match self.dual_simplex(deadline) {
            LoopEnd::Done => {
                self.stats.warm_starts += 1;
                self.factored = true;
                Some(LpOutcome::Optimal(self.extract()))
            }
            LoopEnd::Infeasible => {
                self.stats.warm_starts += 1;
                Some(LpOutcome::Infeasible)
            }
            LoopEnd::TimeLimit => Some(LpOutcome::TimeLimit),
            LoopEnd::Stalled | LoopEnd::Unbounded => None,
        }
    }

    /// Cold path: all-logical basis, primal phases 1 and 2.
    fn solve_cold(&mut self, deadline: Option<Instant>) -> LpOutcome {
        self.basis.reset_logical();
        self.stats.cold_solves += 1;
        self.recompute_xb();
        match self.primal_simplex(deadline) {
            LoopEnd::Done => {
                self.factored = true;
                LpOutcome::Optimal(self.extract())
            }
            LoopEnd::Infeasible => {
                self.factored = true;
                LpOutcome::Infeasible
            }
            LoopEnd::Unbounded => {
                self.factored = false;
                LpOutcome::Unbounded
            }
            LoopEnd::TimeLimit => LpOutcome::TimeLimit,
            LoopEnd::Stalled => {
                self.factored = false;
                LpOutcome::Numerical("simplex failed to make progress")
            }
        }
    }

    /// The value a nonbasic variable currently sits at.
    #[inline]
    pub(crate) fn nb_value(&self, j: usize) -> f64 {
        match self.basis.state[j] {
            VarState::AtLower => self.lo[j],
            VarState::AtUpper => self.hi[j],
            VarState::Basic(r) => self.xb[r as usize],
        }
    }

    /// Recomputes `xb = B⁻¹ (b − N·x_N)` from the current states and bounds.
    pub(crate) fn recompute_xb(&mut self) {
        self.u.clear();
        self.u.extend_from_slice(&self.b);
        // Only structural nonbasics can sit at a non-zero value: the finite
        // bounds of every logical column are zero.
        for j in 0..self.cols.n_struct {
            let v = match self.basis.state[j] {
                VarState::Basic(_) => continue,
                VarState::AtLower => self.lo[j],
                VarState::AtUpper => self.hi[j],
            };
            if v != 0.0 {
                for (r, a) in self.cols.col(j) {
                    self.u[r] -= v * a;
                }
            }
        }
        self.basis.ftran_dense(&self.u, &mut self.xb);
    }

    /// Computes the reduced costs of every column into `self.d` (basic
    /// entries are zeroed).
    pub(crate) fn compute_reduced_costs(&mut self) {
        let mut y = std::mem::take(&mut self.y);
        self.basis.btran_costs(&self.cost, &mut y);
        let n_total = self.cols.n_total();
        self.d.clear();
        self.d.resize(n_total, 0.0);
        for j in 0..n_total {
            if let VarState::Basic(_) = self.basis.state[j] {
                continue;
            }
            let cj = self.cost.get(j).copied().unwrap_or(0.0);
            self.d[j] = cj - self.cols.dot_col(&y, j);
        }
        self.y = y;
    }

    /// Rebuilds the factors and the basic values; `false` means the basis
    /// is numerically lost and the caller must restart cold.
    pub(crate) fn refactor_and_sync(&mut self) -> bool {
        let mut scratch = std::mem::take(&mut self.w);
        let ok = self.basis.refactorize(&self.cols, &mut scratch);
        self.w = scratch;
        self.stats.refactorizations += 1;
        if ok {
            self.recompute_xb();
        }
        ok
    }

    /// Extracts the structural solution at the current basis.
    fn extract(&self) -> LpSolution {
        let n = self.cols.n_struct;
        let mut values = Vec::with_capacity(n);
        for j in 0..n {
            let v = self.nb_value(j);
            // Clamp away negative dust, like the dense reference.
            values.push(if v < 0.0 && v > -1e-6 { 0.0 } else { v });
        }
        let objective: f64 = values
            .iter()
            .zip(&self.cost)
            .map(|(&x, &c)| if c != 0.0 { c * x } else { 0.0 })
            .sum();
        LpSolution {
            values,
            objective: if self.maximize { -objective } else { objective },
        }
    }

    /// Whether the deadline expired.
    #[inline]
    pub(crate) fn past_deadline(deadline: Option<Instant>) -> bool {
        deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Iteration cap of one simplex loop.
    #[inline]
    pub(crate) fn iteration_cap(&self) -> usize {
        50 * (self.cols.m + self.cols.n_total()) + 10_000
    }

    /// Iterations after which pricing switches to Bland's rule.
    #[inline]
    pub(crate) fn bland_threshold(&self) -> usize {
        5 * (self.cols.m + self.cols.n_total()) + 1_000
    }
}
