//! Shared LP types and the one-shot LP entry point.
//!
//! The actual LP engine is the bounded-variable revised simplex in
//! [`crate::workspace`] (sparse column storage, sparse LU basis
//! factorisation, primal two-phase for cold solves and devex-priced dual
//! reoptimisation for warm starts). The original dense tableau lives on in
//! [`crate::dense`] as the reference implementation for the equivalence
//! property tests and benches.

use crate::basis::BasisBackend;
use crate::workspace::LpWorkspace;
use crate::Result;

/// Numerical tolerance used throughout the solver.
pub const TOL: f64 = 1e-7;

/// Result of an LP solve: an optimal basic solution of the relaxation.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Value of each structural (model) variable.
    pub values: Vec<f64>,
    /// Objective value in the *model's* sense (i.e. already negated back for
    /// maximisation problems).
    pub objective: f64,
}

/// Additional bounds imposed on single variables by branch-and-bound.
///
/// These intersect with the model's native bounds: the effective range is
/// `[max(native_lo, lo), min(native_hi, hi)]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarBound {
    /// Index of the variable being bounded.
    pub var: usize,
    /// Lower bound (`x >= lo`).
    pub lo: f64,
    /// Upper bound (`x <= hi`).
    pub hi: f64,
}

/// An LP solver over one model that keeps its basis between calls.
///
/// The first [`solve`](LpSolver::solve) runs the primal two-phase simplex
/// cold; later calls with different `bounds` warm-start from the previous
/// optimal basis and reoptimise with the dual simplex — a branch-and-bound
/// node that only tightens a bound typically needs a handful of pivots
/// instead of a full solve. [`Solver`](crate::Solver) threads one of these
/// through its whole node stack.
#[derive(Debug, Clone)]
pub struct LpSolver {
    ws: LpWorkspace,
}

impl LpSolver {
    /// Builds the solver's sparse workspace from a model.
    ///
    /// # Errors
    ///
    /// Returns a validation error if the model is malformed.
    pub fn new(model: &crate::Model) -> Result<Self> {
        Self::with_backend(model, BasisBackend::default())
    }

    /// Builds the solver with an explicit basis factorisation backend.
    ///
    /// [`BasisBackend::SparseLu`] is the default;
    /// [`BasisBackend::DenseInverse`] keeps the dense explicit-inverse code
    /// path alive for equivalence tests and benchmark comparisons.
    ///
    /// # Errors
    ///
    /// Returns a validation error if the model is malformed.
    pub fn with_backend(model: &crate::Model, backend: BasisBackend) -> Result<Self> {
        model.validate()?;
        Ok(LpSolver {
            ws: LpWorkspace::with_backend(model, backend),
        })
    }

    /// Solves the LP relaxation under the given extra variable bounds.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::Infeasible`](crate::IlpError::Infeasible) or
    /// [`IlpError::Unbounded`](crate::IlpError::Unbounded) when the
    /// relaxation has no optimum, and
    /// [`IlpError::Numerical`](crate::IlpError::Numerical) if pivoting fails
    /// to make progress even after a cold restart.
    pub fn solve(&mut self, bounds: &[VarBound]) -> Result<LpSolution> {
        self.ws.solve(bounds, None).into_result()
    }

    /// Number of simplex iterations (pivots and bound flips) so far.
    pub fn iterations(&self) -> u64 {
        self.ws.stats.iterations
    }

    /// Number of solves answered by warm-started dual reoptimisation.
    pub fn warm_starts(&self) -> u64 {
        self.ws.stats.warm_starts
    }

    /// Number of solves that ran the primal simplex from a cold basis.
    pub fn cold_solves(&self) -> u64 {
        self.ws.stats.cold_solves
    }

    /// Number of basis refactorisations (periodic and stability-triggered).
    pub fn refactorizations(&self) -> u64 {
        self.ws.stats.refactorizations
    }

    /// Number of bound flips (primal flip steps and dual BFRT flips).
    pub fn bound_flips(&self) -> u64 {
        self.ws.stats.bound_flips
    }
}

/// Solves the LP relaxation of `model` once, treating binary variables as
/// continuous within their bounds and applying the extra `bounds` on top.
///
/// This is the one-shot convenience wrapper around [`LpSolver`]; callers that
/// re-solve under changing bounds should hold an `LpSolver` to benefit from
/// warm starts.
///
/// # Errors
///
/// Returns [`IlpError::Infeasible`](crate::IlpError::Infeasible) or
/// [`IlpError::Unbounded`](crate::IlpError::Unbounded) when the relaxation
/// has no optimum, and [`IlpError::Numerical`](crate::IlpError::Numerical)
/// if the pivoting loop fails to make progress.
pub fn solve_lp(model: &crate::Model, bounds: &[VarBound]) -> Result<LpSolution> {
    LpSolver::new(model)?.solve(bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::IlpError;
    use crate::model::{Model, ObjectiveSense};

    #[test]
    fn maximisation_with_slack_only() {
        // max 3x + 2y s.t. x + y <= 4, x <= 2, y <= 3  =>  x=2, y=2, obj=10.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x = m.add_continuous("x", 3.0);
        let y = m.add_continuous("y", 2.0);
        m.add_constraint_le(vec![(x, 1.0), (y, 1.0)], 4.0);
        m.add_constraint_le(vec![(x, 1.0)], 2.0);
        m.add_constraint_le(vec![(y, 1.0)], 3.0);
        let s = solve_lp(&m, &[]).unwrap();
        assert!((s.objective - 10.0).abs() < 1e-6);
        assert!((s.values[x.index()] - 2.0).abs() < 1e-6);
        assert!((s.values[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn minimisation_with_ge_rows_needs_phase1() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1  =>  x=4, y=0.
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 2.0);
        let y = m.add_continuous("y", 3.0);
        m.add_constraint_ge(vec![(x, 1.0), (y, 1.0)], 4.0);
        m.add_constraint_ge(vec![(x, 1.0)], 1.0);
        let s = solve_lp(&m, &[]).unwrap();
        assert!((s.objective - 8.0).abs() < 1e-6);
        assert!((s.values[x.index()] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints_are_honoured() {
        // min x + y s.t. x + 2y == 6, x - y == 0  => x = y = 2, obj 4.
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_continuous("y", 1.0);
        m.add_constraint_eq(vec![(x, 1.0), (y, 2.0)], 6.0);
        m.add_constraint_eq(vec![(x, 1.0), (y, -1.0)], 0.0);
        let s = solve_lp(&m, &[]).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-6);
        assert!((s.values[x.index()] - 2.0).abs() < 1e-6);
        assert!((s.values[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_model_is_detected() {
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        m.add_constraint_le(vec![(x, 1.0)], 1.0);
        m.add_constraint_ge(vec![(x, 1.0)], 2.0);
        assert_eq!(solve_lp(&m, &[]).unwrap_err(), IlpError::Infeasible);
    }

    #[test]
    fn unbounded_model_is_detected() {
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_continuous("y", 1.0);
        m.add_constraint_ge(vec![(x, 1.0), (y, -1.0)], 0.0);
        assert_eq!(solve_lp(&m, &[]).unwrap_err(), IlpError::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_handled() {
        // x - y <= -1  (i.e. y >= x + 1), minimise y with x >= 0.
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 0.0);
        let y = m.add_continuous("y", 1.0);
        m.add_constraint_le(vec![(x, 1.0), (y, -1.0)], -1.0);
        let s = solve_lp(&m, &[]).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6);
        assert!((s.values[y.index()] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn branch_bounds_restrict_variables() {
        // max x + y s.t. x + y <= 3, both binary-relaxed; force x = 0.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x = m.add_binary("x", 2.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint_le(vec![(x, 1.0), (y, 1.0)], 3.0);
        let free = solve_lp(&m, &[]).unwrap();
        assert!((free.objective - 3.0).abs() < 1e-6);
        let forced = solve_lp(
            &m,
            &[VarBound {
                var: x.index(),
                lo: 0.0,
                hi: 0.0,
            }],
        )
        .unwrap();
        assert!((forced.objective - 1.0).abs() < 1e-6);
        assert!(forced.values[x.index()].abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; mostly checks that pivoting terminates.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x1 = m.add_continuous("x1", 10.0);
        let x2 = m.add_continuous("x2", -57.0);
        let x3 = m.add_continuous("x3", -9.0);
        let x4 = m.add_continuous("x4", -24.0);
        m.add_constraint_le(vec![(x1, 0.5), (x2, -5.5), (x3, -2.5), (x4, 9.0)], 0.0);
        m.add_constraint_le(vec![(x1, 0.5), (x2, -1.5), (x3, -0.5), (x4, 1.0)], 0.0);
        m.add_constraint_le(vec![(x1, 1.0)], 1.0);
        let s = solve_lp(&m, &[]).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-5);
    }

    #[test]
    fn native_bounds_need_no_rows() {
        // min x with x in [2.5, 10]: optimum sits on the native lower bound.
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_continuous("y", -1.0);
        m.set_bounds(x, 2.5, 10.0);
        m.set_bounds(y, 0.0, 4.0);
        // No constraint rows at all: everything is decided by the bounds.
        m.add_constraint_le(vec![(x, 1.0), (y, 1.0)], 100.0);
        let s = solve_lp(&m, &[]).unwrap();
        assert!((s.values[x.index()] - 2.5).abs() < 1e-6, "{:?}", s.values);
        assert!((s.values[y.index()] - 4.0).abs() < 1e-6, "{:?}", s.values);
        assert!((s.objective - (2.5 - 4.0)).abs() < 1e-6);
    }

    #[test]
    fn warm_started_resolves_match_cold_solves() {
        // max 2a + b + c s.t. a + b + c <= 2, binaries; then fix vars one at
        // a time and compare the warm-started reoptimisation against a cold
        // solver at every step.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let a = m.add_binary("a", 2.0);
        let b = m.add_binary("b", 1.0);
        let c = m.add_binary("c", 1.5);
        m.add_constraint_le(vec![(a, 1.0), (b, 1.0), (c, 1.0)], 2.0);
        let mut warm = LpSolver::new(&m).unwrap();
        let paths: &[&[VarBound]] = &[
            &[],
            &[VarBound {
                var: a.index(),
                lo: 0.0,
                hi: 0.0,
            }],
            &[VarBound {
                var: a.index(),
                lo: 1.0,
                hi: 1.0,
            }],
            &[
                VarBound {
                    var: a.index(),
                    lo: 1.0,
                    hi: 1.0,
                },
                VarBound {
                    var: c.index(),
                    lo: 0.0,
                    hi: 0.0,
                },
            ],
        ];
        for bounds in paths {
            let w = warm.solve(bounds).unwrap();
            let cold = solve_lp(&m, bounds).unwrap();
            assert!(
                (w.objective - cold.objective).abs() < 1e-6,
                "bounds {bounds:?}: warm {} vs cold {}",
                w.objective,
                cold.objective
            );
        }
        assert!(warm.warm_starts() > 0, "reoptimisations should warm-start");
    }
}
