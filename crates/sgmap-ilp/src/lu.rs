//! Sparse LU factorisation of the simplex basis with Markowitz pivoting.
//!
//! The basis matrix `B` (columns gathered from the shared [`SparseCols`]
//! store according to the current `basic[]` assignment) is factorised by
//! Gaussian elimination with Markowitz-style pivot selection: at each step
//! the pivot minimises the fill-in estimate `(r_i − 1)·(c_j − 1)` among
//! entries that pass a relative column-threshold stability test. Candidate
//! search is restricted to the active columns of minimum count (widening to
//! a full scan only when none of them is numerically usable), which keeps a
//! refactorisation close to `O(nnz)` on the mapper's near-triangular bases.
//!
//! Between refactorisations, basis changes are absorbed as *eta updates*
//! (product-form): replacing the basic variable of row `r` by a column with
//! ftran direction `w` appends the eta `(r, w)`, so
//! `B_k = B_0 · E_1 ⋯ E_k` and
//!
//! * **ftran** (`B w = a`) runs the LU solve then applies `E_i⁻¹` oldest to
//!   newest,
//! * **btran** (`Bᵀ y = c`) applies the transposed `E_i⁻¹` newest to oldest,
//!   then runs the LU-transpose solve.
//!
//! The factorisation is rebuilt every [`ETA_LIMIT`] updates, or earlier when
//! an update shows large pivot growth (`|w_r|` tiny against `‖w‖∞`), which
//! is the classical stability trigger for product-form files.
//!
//! All tie-breaks (pivot choice, candidate order) are by lowest index, so a
//! given basis always factorises the same way — part of the crate-wide
//! determinism contract.

use crate::sparse::SparseCols;

/// Refactorise after this many eta updates.
const ETA_LIMIT: usize = 64;
/// Relative Markowitz threshold: a pivot must be at least this fraction of
/// the largest entry in its column.
const MARKOWITZ_TAU: f64 = 0.01;
/// Smallest pivot magnitude usable at all.
const ABS_PIVOT_TOL: f64 = 1e-11;
/// Pivot-growth trigger: an eta pivot below this fraction of the direction's
/// max-norm forces an early refactorisation.
const GROWTH_TOL: f64 = 1e-7;
/// Entries cancelled below this magnitude during elimination are dropped.
const DROP_TOL: f64 = 1e-12;

/// One product-form update: the basic variable of position `r` was replaced
/// by a column whose ftran direction had pivot `pivot` at `r` and the stored
/// off-pivot entries elsewhere.
#[derive(Debug, Clone)]
struct Eta {
    r: u32,
    pivot: f64,
    ix: Vec<u32>,
    val: Vec<f64>,
}

/// Sparse LU factors of the basis plus the eta file of updates since the
/// last refactorisation.
///
/// Row/column conventions: the basis matrix has *constraint rows* as matrix
/// rows and *basis positions* as matrix columns, so ftran maps row space to
/// position space and btran the other way around (matching the dense
/// inverse, whose rows are positions and columns are constraint rows).
#[derive(Debug, Clone)]
pub(crate) struct LuFactor {
    m: usize,
    /// Constraint row pivoted at elimination step `k`.
    perm_row: Vec<u32>,
    /// Basis position pivoted at elimination step `k`.
    perm_col: Vec<u32>,
    /// Pivot values `u_kk`.
    udiag: Vec<f64>,
    // L multipliers of each step: `(row, l)` means that row was reduced by
    // `l ×` the step's pivot row.
    l_ptr: Vec<u32>,
    l_ix: Vec<u32>,
    l_val: Vec<f64>,
    // Off-diagonal U entries of each step's pivot row: `(position, u)`.
    u_ptr: Vec<u32>,
    u_ix: Vec<u32>,
    u_val: Vec<f64>,
    etas: Vec<Eta>,
    force_refactor: bool,
    work: Vec<f64>,
}

impl LuFactor {
    /// The identity factorisation (all-logical basis in natural order).
    pub(crate) fn identity(m: usize) -> LuFactor {
        let mut f = LuFactor {
            m,
            perm_row: Vec::new(),
            perm_col: Vec::new(),
            udiag: Vec::new(),
            l_ptr: Vec::new(),
            l_ix: Vec::new(),
            l_val: Vec::new(),
            u_ptr: Vec::new(),
            u_ix: Vec::new(),
            u_val: Vec::new(),
            etas: Vec::new(),
            force_refactor: false,
            work: Vec::new(),
        };
        f.reset_identity();
        f
    }

    /// Resets to the identity factorisation in place.
    pub(crate) fn reset_identity(&mut self) {
        let m = self.m;
        self.perm_row.clear();
        self.perm_col.clear();
        self.udiag.clear();
        for k in 0..m {
            self.perm_row.push(k as u32);
            self.perm_col.push(k as u32);
            self.udiag.push(1.0);
        }
        self.l_ptr.clear();
        self.l_ptr.resize(m + 1, 0);
        self.l_ix.clear();
        self.l_val.clear();
        self.u_ptr.clear();
        self.u_ptr.resize(m + 1, 0);
        self.u_ix.clear();
        self.u_val.clear();
        self.etas.clear();
        self.force_refactor = false;
    }

    /// Whether the eta file is long (or unstable) enough to warrant a
    /// rebuild.
    pub(crate) fn wants_refactor(&self) -> bool {
        self.force_refactor || self.etas.len() >= ETA_LIMIT
    }

    /// Whether the factors carry no updates since the last rebuild (so the
    /// directions they produce are as accurate as a fresh factorisation).
    pub(crate) fn is_fresh(&self) -> bool {
        self.etas.is_empty()
    }

    /// Appends the eta update for a pivot at position `r` with ftran
    /// direction `w`. Returns `false` (factors untouched) when the pivot
    /// element is numerically unusable.
    pub(crate) fn update(&mut self, r: usize, w: &[f64]) -> bool {
        let pivot = w[r];
        if pivot.abs() < ABS_PIVOT_TOL {
            return false;
        }
        let mut ix = Vec::new();
        let mut val = Vec::new();
        let mut wmax = pivot.abs();
        for (i, &wi) in w.iter().enumerate() {
            if i != r && wi != 0.0 {
                ix.push(i as u32);
                val.push(wi);
                if wi.abs() > wmax {
                    wmax = wi.abs();
                }
            }
        }
        if pivot.abs() < GROWTH_TOL * wmax {
            // Large pivot growth: accept the update but rebuild soon.
            self.force_refactor = true;
        }
        self.etas.push(Eta {
            r: r as u32,
            pivot,
            ix,
            val,
        });
        true
    }

    /// Factorises the basis selected by `basic` from scratch, emptying the
    /// eta file. Returns `false` when the basis matrix is (numerically)
    /// singular; the factors are unusable then and the caller must restart
    /// from a logical basis.
    pub(crate) fn refactorize(&mut self, cols: &SparseCols, basic: &[u32]) -> bool {
        let m = self.m;
        debug_assert_eq!(basic.len(), m);
        self.perm_row.clear();
        self.perm_col.clear();
        self.udiag.clear();
        self.l_ptr.clear();
        self.l_ptr.push(0);
        self.l_ix.clear();
        self.l_val.clear();
        self.u_ptr.clear();
        self.u_ptr.push(0);
        self.u_ix.clear();
        self.u_val.clear();
        self.etas.clear();
        self.force_refactor = false;

        // Gather B by rows: rows[i] = sorted (position, value) entries.
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m];
        for (t, &bv) in basic.iter().enumerate() {
            match cols.logical_row(bv as usize) {
                Some(r) => rows[r].push((t as u32, 1.0)),
                None => {
                    for (r, v) in cols.col(bv as usize) {
                        rows[r].push((t as u32, v));
                    }
                }
            }
        }
        // Column → candidate row lists (kept sorted/compact lazily) and
        // exact active-entry counts per column.
        let mut col_rows: Vec<Vec<u32>> = vec![Vec::new(); m];
        let mut col_count = vec![0u32; m];
        for (i, row) in rows.iter().enumerate() {
            for &(t, _) in row {
                col_rows[t as usize].push(i as u32);
                col_count[t as usize] += 1;
            }
        }
        let mut row_active = vec![true; m];
        let mut col_active = vec![true; m];
        let mut merged: Vec<(u32, f64)> = Vec::new();

        for _step in 0..m {
            // Minimum active column count (structural singularity when an
            // active column has no entries left).
            let mut cmin = u32::MAX;
            for t in 0..m {
                if col_active[t] {
                    if col_count[t] == 0 {
                        return false;
                    }
                    if col_count[t] < cmin {
                        cmin = col_count[t];
                    }
                }
            }
            // Pivot search: the min-count columns first, everything on the
            // rare second pass where none of them is numerically usable.
            let mut best: Option<(u64, u32, u32, f64)> = None; // (cost, t, i, val)
            'pass: for pass in 0..2 {
                for t in 0..m {
                    if !col_active[t] || (pass == 0 && col_count[t] != cmin) {
                        continue;
                    }
                    // Compact the candidate list: drop rows that went
                    // inactive or whose entry cancelled out, and dedup —
                    // an entry that cancelled and was later refilled leaves
                    // its row in the list twice.
                    let list = &mut col_rows[t];
                    list.retain(|&i| {
                        row_active[i as usize]
                            && rows[i as usize]
                                .binary_search_by_key(&(t as u32), |e| e.0)
                                .is_ok()
                    });
                    list.sort_unstable();
                    list.dedup();
                    col_count[t] = list.len() as u32;
                    let mut cmax = 0.0f64;
                    for &i in list.iter() {
                        let row = &rows[i as usize];
                        let v = row[row.binary_search_by_key(&(t as u32), |e| e.0).unwrap()].1;
                        if v.abs() > cmax {
                            cmax = v.abs();
                        }
                    }
                    for &i in col_rows[t].iter() {
                        let row = &rows[i as usize];
                        let v = row[row.binary_search_by_key(&(t as u32), |e| e.0).unwrap()].1;
                        if v.abs() < ABS_PIVOT_TOL || v.abs() < MARKOWITZ_TAU * cmax {
                            continue;
                        }
                        let cost = (rows[i as usize].len() as u64 - 1) * (col_count[t] as u64 - 1);
                        let take = match best {
                            None => true,
                            Some((bc, bt, bi, _)) => {
                                cost < bc
                                    || (cost == bc
                                        && ((t as u32) < bt || ((t as u32) == bt && i < bi)))
                            }
                        };
                        if take {
                            best = Some((cost, t as u32, i, v));
                        }
                    }
                    if matches!(best, Some((0, ..))) {
                        // Zero fill and lowest column index: can't improve.
                        break 'pass;
                    }
                }
                if best.is_some() {
                    break;
                }
            }
            let (_, tq, p, pivot) = match best {
                Some(b) => b,
                None => return false, // numerically singular
            };
            let (t, p) = (tq as usize, p as usize);
            self.perm_row.push(p as u32);
            self.perm_col.push(t as u32);
            self.udiag.push(pivot);
            row_active[p] = false;
            col_active[t] = false;
            // Record the pivot row as a U row and take it out of the
            // active column counts.
            for &(c, v) in &rows[p] {
                if c as usize != t {
                    self.u_ix.push(c);
                    self.u_val.push(v);
                    col_count[c as usize] -= 1;
                }
            }
            self.u_ptr.push(self.u_ix.len() as u32);
            col_count[t] = 0;
            // Eliminate the pivot column from the remaining active rows.
            let elim: Vec<u32> = col_rows[t]
                .iter()
                .copied()
                .filter(|&i| i as usize != p)
                .collect();
            let pivot_row = std::mem::take(&mut rows[p]);
            for &iu in &elim {
                let i = iu as usize;
                let e = rows[i]
                    .binary_search_by_key(&(t as u32), |e| e.0)
                    .expect("candidate lists were just compacted");
                let factor = rows[i][e].1 / pivot;
                self.l_ix.push(iu);
                self.l_val.push(factor);
                // rows[i] ← rows[i] − factor·pivot_row, dropping column t.
                merged.clear();
                let (a, b) = (&rows[i], &pivot_row);
                let (mut ia, mut ib) = (0, 0);
                while ia < a.len() || ib < b.len() {
                    let ca = a.get(ia).map_or(u32::MAX, |e| e.0);
                    let cb = b.get(ib).map_or(u32::MAX, |e| e.0);
                    if ca < cb {
                        merged.push(a[ia]);
                        ia += 1;
                    } else if cb < ca {
                        // Fill-in: register the new entry's row candidacy.
                        let v = -factor * b[ib].1;
                        if cb as usize != t && v.abs() > DROP_TOL {
                            merged.push((cb, v));
                            col_rows[cb as usize].push(iu);
                            col_count[cb as usize] += 1;
                        }
                        ib += 1;
                    } else {
                        if ca as usize != t {
                            let v = a[ia].1 - factor * b[ib].1;
                            if v.abs() > DROP_TOL {
                                merged.push((ca, v));
                            } else {
                                col_count[ca as usize] -= 1;
                            }
                        }
                        ia += 1;
                        ib += 1;
                    }
                }
                std::mem::swap(&mut rows[i], &mut merged);
            }
            self.l_ptr.push(self.l_ix.len() as u32);
        }
        true
    }

    /// Solves `B w = a` in place: on entry `x` holds the right-hand side
    /// indexed by constraint row, on exit the solution indexed by basis
    /// position.
    pub(crate) fn ftran(&mut self, x: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(x.len(), m);
        // L solve (apply the elimination steps to the rhs).
        for k in 0..m {
            let xp = x[self.perm_row[k] as usize];
            if xp != 0.0 {
                let (lo, hi) = (self.l_ptr[k] as usize, self.l_ptr[k + 1] as usize);
                for (ix, lv) in self.l_ix[lo..hi].iter().zip(&self.l_val[lo..hi]) {
                    x[*ix as usize] -= lv * xp;
                }
            }
        }
        // U back-substitution into position space.
        self.work.clear();
        self.work.resize(m, 0.0);
        for k in (0..m).rev() {
            let mut v = x[self.perm_row[k] as usize];
            let (lo, hi) = (self.u_ptr[k] as usize, self.u_ptr[k + 1] as usize);
            for (ix, uv) in self.u_ix[lo..hi].iter().zip(&self.u_val[lo..hi]) {
                v -= uv * self.work[*ix as usize];
            }
            self.work[self.perm_col[k] as usize] = v / self.udiag[k];
        }
        x.copy_from_slice(&self.work);
        // Eta file, oldest to newest.
        for eta in &self.etas {
            let r = eta.r as usize;
            let xr = x[r] / eta.pivot;
            x[r] = xr;
            if xr != 0.0 {
                for (ix, wv) in eta.ix.iter().zip(&eta.val) {
                    x[*ix as usize] -= wv * xr;
                }
            }
        }
    }

    /// Solves `Bᵀ y = c` in place: on entry `x` holds the right-hand side
    /// indexed by basis position, on exit the solution indexed by
    /// constraint row.
    pub(crate) fn btran(&mut self, x: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(x.len(), m);
        // Eta file transposed, newest to oldest.
        for eta in self.etas.iter().rev() {
            let r = eta.r as usize;
            let mut acc = x[r];
            for (ix, wv) in eta.ix.iter().zip(&eta.val) {
                acc -= wv * x[*ix as usize];
            }
            x[r] = acc / eta.pivot;
        }
        // Uᵀ forward solve (scatter form over the U rows).
        self.work.clear();
        self.work.resize(m, 0.0);
        for k in 0..m {
            let vk = x[self.perm_col[k] as usize] / self.udiag[k];
            self.work[self.perm_row[k] as usize] = vk;
            if vk != 0.0 {
                let (lo, hi) = (self.u_ptr[k] as usize, self.u_ptr[k + 1] as usize);
                for (ix, uv) in self.u_ix[lo..hi].iter().zip(&self.u_val[lo..hi]) {
                    x[*ix as usize] -= uv * vk;
                }
            }
        }
        x.copy_from_slice(&self.work);
        // Lᵀ solve (apply the transposed elimination steps in reverse).
        for k in (0..m).rev() {
            let (lo, hi) = (self.l_ptr[k] as usize, self.l_ptr[k + 1] as usize);
            let mut acc = x[self.perm_row[k] as usize];
            for (ix, lv) in self.l_ix[lo..hi].iter().zip(&self.l_val[lo..hi]) {
                acc -= lv * x[*ix as usize];
            }
            x[self.perm_row[k] as usize] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, ObjectiveSense};

    fn toy() -> SparseCols {
        // Rows: 2x + y <= 4, x + 3y <= 6 (logical cols 2 and 3).
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_continuous("y", 1.0);
        m.add_constraint_le(vec![(x, 2.0), (y, 1.0)], 4.0);
        m.add_constraint_le(vec![(x, 1.0), (y, 3.0)], 6.0);
        SparseCols::from_model(&m)
    }

    #[test]
    fn factorises_and_solves_a_structural_basis() {
        let cols = toy();
        let mut lu = LuFactor::identity(2);
        // Basis = {x, y}: B = [[2, 1], [1, 3]], det 5.
        assert!(lu.refactorize(&cols, &[0, 1]));
        // ftran of b = (4, 6): solution of B w = b is (6/5, 8/5).
        let mut v = vec![4.0, 6.0];
        lu.ftran(&mut v);
        assert!((v[0] - 1.2).abs() < 1e-12 && (v[1] - 1.6).abs() < 1e-12);
        // btran of c = (1, 1): y with B'y = c is (2/5, 1/5).
        let mut c = vec![1.0, 1.0];
        lu.btran(&mut c);
        assert!((c[0] - 0.4).abs() < 1e-12 && (c[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn eta_updates_track_the_dense_product_form() {
        let cols = toy();
        let mut lu = LuFactor::identity(2);
        // Start logical (B = I), bring x into position 0: w = B⁻¹a_x = a_x.
        let w = vec![2.0, 1.0];
        assert!(lu.update(0, &w));
        // B = [[2, 0], [1, 1]] now; ftran of e_0 = first column of B⁻¹,
        // which is (0.5, -0.5).
        let mut v = vec![1.0, 0.0];
        lu.ftran(&mut v);
        assert!((v[0] - 0.5).abs() < 1e-12 && (v[1] + 0.5).abs() < 1e-12);
        // btran of e_1 = second row of B⁻¹ = (-0.5, 1).
        let mut c = vec![0.0, 1.0];
        lu.btran(&mut c);
        assert!((c[0] + 0.5).abs() < 1e-12 && (c[1] - 1.0).abs() < 1e-12);
        // Refactorising the same basis gives identical solves.
        assert!(lu.refactorize(&cols, &[0, 3]));
        let mut v2 = vec![1.0, 0.0];
        lu.ftran(&mut v2);
        assert!((v2[0] - 0.5).abs() < 1e-12 && (v2[1] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn singular_basis_is_reported() {
        // Two identical columns cannot form a basis.
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_continuous("x", 1.0);
        m.add_constraint_le(vec![(x, 1.0)], 1.0);
        m.add_constraint_le(vec![(x, 1.0)], 2.0);
        let cols = SparseCols::from_model(&m);
        let mut lu = LuFactor::identity(2);
        assert!(!lu.refactorize(&cols, &[0, 0]));
    }

    #[test]
    fn vanishing_eta_pivot_is_rejected_and_growth_triggers_refactor() {
        let mut lu = LuFactor::identity(2);
        assert!(!lu.update(0, &[0.0, 1.0]));
        assert!(!lu.wants_refactor());
        assert!(lu.update(0, &[1e-9, 1.0]));
        assert!(lu.wants_refactor(), "pivot growth must force a rebuild");
    }
}
