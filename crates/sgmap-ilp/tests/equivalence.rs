//! Equivalence of the revised bounded-variable simplex against the dense
//! two-phase reference, on randomly generated models.
//!
//! The two cores may land on *different optimal vertices* (their pivot rules
//! differ), so the contract is: identical feasibility classification
//! (optimal / infeasible / unbounded), matching optimal objective values
//! within tolerance, and solutions that actually satisfy the model. This is
//! the determinism story of the revised-simplex migration: the golden
//! reports were re-baselined, and this suite proves the objective values —
//! the quantity the mapper consumes — are preserved.

use proptest::prelude::*;

use sgmap_ilp::simplex::VarBound;
use sgmap_ilp::{
    dense, simplex, BasisBackend, IlpError, LpSolver, Model, ObjectiveSense, Solver, SolverOptions,
};

/// Absolute + relative tolerance for comparing optimal objectives.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

/// Deterministic mini-RNG (SplitMix64) so a whole model derives from one
/// seed — the vendored proptest has no shrinking, and a single-seed case is
/// trivially reproducible by hand.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform integer in `[lo, hi]`.
    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// A random small model with every row sense, native bounds, a mix of
/// binary and continuous variables — including presolve fodder: variables
/// fixed by their bounds and singleton rows — plus branch-style bound
/// restrictions.
fn random_model(seed: u64) -> (Model, Vec<VarBound>) {
    let mut g = Gen(seed);
    let sense = if g.chance(50) {
        ObjectiveSense::Minimize
    } else {
        ObjectiveSense::Maximize
    };
    let mut model = Model::new(sense);
    let n_vars = 1 + g.below(5) as usize;
    let mut vars = Vec::with_capacity(n_vars);
    let mut binaries = Vec::new();
    for i in 0..n_vars {
        let cost = g.int(-5, 5) as f64;
        if g.chance(50) {
            let v = model.add_binary(format!("b{i}"), cost);
            if g.chance(15) {
                // Bound-fixed binary: presolve substitutes it away.
                let fix = if g.chance(50) { 1.0 } else { 0.0 };
                model.set_bounds(v, fix, fix);
            } else {
                binaries.push(v);
            }
            vars.push(v);
        } else {
            let v = model.add_continuous(format!("c{i}"), cost);
            if g.chance(15) {
                // Bound-fixed continuous variable.
                let fix = g.int(0, 3) as f64;
                model.set_bounds(v, fix, fix);
            } else if g.chance(40) {
                let lo = g.int(0, 2) as f64;
                let hi = if g.chance(50) {
                    lo + g.int(0, 3) as f64
                } else {
                    f64::INFINITY
                };
                model.set_bounds(v, lo, hi);
            }
            vars.push(v);
        }
    }
    let n_rows = g.below(6) as usize;
    for _ in 0..n_rows {
        let mut terms = Vec::new();
        if g.chance(25) {
            // Singleton row: presolve turns it into a bound.
            let v = vars[g.below(vars.len() as u64) as usize];
            let coef = g.int(-3, 3) as f64;
            if coef != 0.0 {
                terms.push((v, coef));
            }
        } else {
            for &v in &vars {
                if g.chance(70) {
                    let coef = g.int(-3, 3) as f64;
                    if coef != 0.0 {
                        terms.push((v, coef));
                    }
                }
            }
        }
        if terms.is_empty() {
            continue;
        }
        let rhs = g.int(-6, 6) as f64;
        match g.below(4) {
            0 => model.add_constraint_ge(terms, rhs),
            1 => model.add_constraint_eq(terms, rhs),
            _ => model.add_constraint_le(terms, rhs),
        }
    }
    let mut bounds = Vec::new();
    for &v in &binaries {
        if g.chance(30) {
            let fix = if g.chance(50) { 1.0 } else { 0.0 };
            bounds.push(VarBound {
                var: v.index(),
                lo: fix,
                hi: fix,
            });
        }
    }
    (model, bounds)
}

/// Checks a returned point against rows, native bounds and branch bounds.
fn satisfies(model: &Model, bounds: &[VarBound], values: &[f64]) -> bool {
    if !model.is_feasible(values, 1e-5) {
        return false;
    }
    bounds.iter().all(|b| {
        let v = values[b.var];
        v >= b.lo - 1e-5 && v <= b.hi + 1e-5
    })
}

/// The old solver's search, reproduced on top of the dense LP core: the
/// ILP-level reference for the equivalence property.
fn reference_bb(model: &Model) -> Result<f64, IlpError> {
    fn most_fractional(model: &Model, values: &[f64]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for var in model.binary_vars() {
            let v = values[var.index()];
            if (v - v.round()).abs() > 1e-6 {
                let dist = (0.5 - (v - v.floor())).abs();
                if best.is_none_or(|(_, d)| dist < d) {
                    best = Some((var.index(), dist));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    fn rec(
        model: &Model,
        bounds: &mut Vec<VarBound>,
        best: &mut Option<f64>,
        minimize: bool,
        depth: usize,
    ) -> Result<(), IlpError> {
        let relax = match dense::solve_lp(model, bounds) {
            Ok(s) => s,
            Err(IlpError::Infeasible) => return Ok(()),
            Err(e) => return Err(e),
        };
        if let Some(b) = *best {
            let promising = if minimize {
                relax.objective < b - 1e-9
            } else {
                relax.objective > b + 1e-9
            };
            if !promising {
                return Ok(());
            }
        }
        match most_fractional(model, &relax.values) {
            None => {
                let obj = relax.objective;
                let better = best.is_none_or(|b| if minimize { obj < b } else { obj > b });
                if better {
                    *best = Some(obj);
                }
                Ok(())
            }
            Some(var) => {
                assert!(depth < 64, "runaway reference search");
                for fix in [0.0, 1.0] {
                    bounds.push(VarBound {
                        var,
                        lo: fix,
                        hi: fix,
                    });
                    rec(model, bounds, best, minimize, depth + 1)?;
                    bounds.pop();
                }
                Ok(())
            }
        }
    }

    let minimize = model.objective_sense() == ObjectiveSense::Minimize;
    let mut best = None;
    rec(model, &mut Vec::new(), &mut best, minimize, 0)?;
    best.ok_or(IlpError::NoIntegerSolution)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// LP level: same classification, same optimal objective, feasible
    /// solutions — on models with equality rows, `>=` rows, native bounds
    /// and branch-bound restrictions.
    #[test]
    fn revised_lp_matches_dense_lp(seed in 0u64..(1u64 << 62)) {
        let (model, bounds) = random_model(seed);
        let dense_result = dense::solve_lp(&model, &bounds);
        let revised_result = simplex::solve_lp(&model, &bounds);
        match (dense_result, revised_result) {
            (Ok(a), Ok(b)) => {
                prop_assert!(
                    close(a.objective, b.objective),
                    "objectives differ: dense {} vs revised {}",
                    a.objective,
                    b.objective
                );
                prop_assert!(satisfies(&model, &bounds, &a.values), "dense point infeasible");
                prop_assert!(satisfies(&model, &bounds, &b.values), "revised point infeasible");
            }
            (Err(IlpError::Infeasible), Err(IlpError::Infeasible)) => {}
            (Err(IlpError::Unbounded), Err(IlpError::Unbounded)) => {}
            (Err(IlpError::Numerical(_)), _) | (_, Err(IlpError::Numerical(_))) => {
                // Numerical breakdown on either side says nothing about
                // equivalence; discard the case.
                prop_assume!(false);
            }
            (a, b) => prop_assert!(false, "classification differs: dense {a:?} vs revised {b:?}"),
        }
    }

    /// ILP level: the warm-started branch-and-bound agrees with an
    /// exhaustive dense-LP search on optimal value and solvability.
    #[test]
    fn warm_started_bb_matches_dense_reference(seed in 0u64..(1u64 << 62)) {
        let (model, _) = random_model(seed);
        let reference = reference_bb(&model);
        let solved = Solver::new().solve(&model);
        match (reference, solved) {
            (Ok(a), Ok(s)) => {
                prop_assert!(
                    close(a, s.objective),
                    "ILP objectives differ: dense reference {} vs revised {}",
                    a,
                    s.objective
                );
                prop_assert!(satisfies(&model, &[], &s.values), "revised ILP point infeasible");
            }
            (
                Err(IlpError::Infeasible) | Err(IlpError::NoIntegerSolution),
                Err(IlpError::Infeasible) | Err(IlpError::NoIntegerSolution),
            ) => {}
            (Err(IlpError::Unbounded), Err(IlpError::Unbounded)) => {}
            (Err(IlpError::Numerical(_)), _) | (_, Err(IlpError::Numerical(_))) => {
                prop_assume!(false);
            }
            (a, b) => prop_assert!(false, "ILP outcome differs: reference {a:?} vs revised {b:?}"),
        }
    }

    /// Presolve level: the full solver with and without the presolve pass
    /// agrees on classification, optimal objective and feasibility — over
    /// models that include bound-fixed variables and singleton rows.
    #[test]
    fn presolve_on_and_off_agree(seed in 0u64..(1u64 << 62)) {
        let (model, _) = random_model(seed);
        let on = Solver::new().solve(&model);
        let off = Solver::with_options(SolverOptions {
            presolve: false,
            ..SolverOptions::default()
        })
        .solve(&model);
        match (on, off) {
            (Ok(a), Ok(b)) => {
                prop_assert!(
                    close(a.objective, b.objective),
                    "objectives differ: presolve on {} vs off {}",
                    a.objective,
                    b.objective
                );
                prop_assert!(satisfies(&model, &[], &a.values), "presolved point infeasible");
                prop_assert!(satisfies(&model, &[], &b.values), "unpresolved point infeasible");
            }
            // Presolve proves infeasibility structurally where the search
            // proves it by exhaustion; both mean "no solution".
            (
                Err(IlpError::Infeasible) | Err(IlpError::NoIntegerSolution),
                Err(IlpError::Infeasible) | Err(IlpError::NoIntegerSolution),
            ) => {}
            (Err(IlpError::Unbounded), Err(IlpError::Unbounded)) => {}
            (Err(IlpError::Numerical(_)), _) | (_, Err(IlpError::Numerical(_))) => {
                prop_assume!(false);
            }
            (a, b) => prop_assert!(false, "classification differs: presolve on {a:?} vs off {b:?}"),
        }
    }

    /// Backend level: the sparse-LU and dense-inverse basis factorisations
    /// drive the same simplex to the same answers.
    #[test]
    fn sparse_lu_matches_dense_inverse_backend(seed in 0u64..(1u64 << 62)) {
        let (model, bounds) = random_model(seed);
        let lu = LpSolver::with_backend(&model, BasisBackend::SparseLu)
            .unwrap()
            .solve(&bounds);
        let dense_inv = LpSolver::with_backend(&model, BasisBackend::DenseInverse)
            .unwrap()
            .solve(&bounds);
        match (lu, dense_inv) {
            (Ok(a), Ok(b)) => {
                prop_assert!(
                    close(a.objective, b.objective),
                    "objectives differ: sparse LU {} vs dense inverse {}",
                    a.objective,
                    b.objective
                );
                prop_assert!(satisfies(&model, &bounds, &a.values), "LU point infeasible");
                prop_assert!(satisfies(&model, &bounds, &b.values), "dense point infeasible");
            }
            (Err(IlpError::Infeasible), Err(IlpError::Infeasible)) => {}
            (Err(IlpError::Unbounded), Err(IlpError::Unbounded)) => {}
            (Err(IlpError::Numerical(_)), _) | (_, Err(IlpError::Numerical(_))) => {
                prop_assume!(false);
            }
            (a, b) => prop_assert!(false, "classification differs: LU {a:?} vs dense {b:?}"),
        }
    }

    /// Warm-start chains: reoptimising one `LpSolver` along a path of
    /// progressively tightened bounds matches a cold solve at every step.
    #[test]
    fn warm_start_chain_matches_cold_solves(seed in 0u64..(1u64 << 62)) {
        let (model, _) = random_model(seed);
        let binaries = model.binary_vars();
        prop_assume!(!binaries.is_empty());
        let mut warm = sgmap_ilp::LpSolver::new(&model).unwrap();
        let mut g = Gen(seed ^ 0xabcd_ef12_3456_789a);
        let mut path: Vec<VarBound> = Vec::new();
        for step in 0..binaries.len() {
            let var = binaries[g.below(binaries.len() as u64) as usize].index();
            let fix = if g.chance(50) { 1.0 } else { 0.0 };
            path.retain(|b| b.var != var);
            path.push(VarBound { var, lo: fix, hi: fix });
            let cold = simplex::solve_lp(&model, &path);
            let warmed = warm.solve(&path);
            match (cold, warmed) {
                (Ok(a), Ok(b)) => prop_assert!(
                    close(a.objective, b.objective),
                    "step {step}: cold {} vs warm {}",
                    a.objective,
                    b.objective
                ),
                (Err(IlpError::Infeasible), Err(IlpError::Infeasible)) => {}
                (Err(IlpError::Unbounded), Err(IlpError::Unbounded)) => {}
                (a, b) => prop_assert!(false, "step {step}: cold {a:?} vs warm {b:?}"),
            }
        }
    }
}
