//! Shared infrastructure for the experiment harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see `DESIGN.md` for the index). This library holds the pieces
//! they share: the configuration "stacks" being compared, a cached runner
//! that partitions each `(application, N)` once and reuses the result for
//! every GPU count, and small statistics helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use sgmap_apps::App;
use sgmap_codegen::{build_execution_plan, PlanOptions};
use sgmap_gpusim::{simulate_plan, GpuSpec, Platform, TransferMode};
use sgmap_graph::StreamGraph;
use sgmap_mapping::{map_with, MappingMethod, MappingOptions};
use sgmap_partition::{build_pdg, partition_with, PartitionerKind, Partitioning};
use sgmap_pee::Estimator;

/// Which end of the comparison a run belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stack {
    /// This paper: proposed partitioner + communication-aware ILP mapping +
    /// peer-to-peer transfers.
    Ours,
    /// The prior work [7]: SM-only partitioner + hardware-agnostic mapping +
    /// transfers staged through the host.
    Previous,
    /// Single-partition single-GPU mapping (the SOSP reference).
    Spsg,
}

impl Stack {
    fn partitioner(self) -> PartitionerKind {
        match self {
            Stack::Ours => PartitionerKind::Proposed,
            Stack::Previous => PartitionerKind::Baseline,
            Stack::Spsg => PartitionerKind::Single,
        }
    }

    fn mapper(self) -> MappingMethod {
        match self {
            Stack::Ours => MappingMethod::Ilp,
            Stack::Previous => MappingMethod::RoundRobin,
            Stack::Spsg => MappingMethod::Greedy,
        }
    }

    fn transfer_mode(self) -> TransferMode {
        match self {
            Stack::Ours | Stack::Spsg => TransferMode::PeerToPeer,
            Stack::Previous => TransferMode::ViaHost,
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Number of partitions the graph was compiled into.
    pub partitions: usize,
    /// GPUs actually used by the mapping.
    pub gpus_used: usize,
    /// Average time per steady-state iteration, microseconds.
    pub time_per_iteration_us: f64,
}

/// Runs one `(application graph, stack, GPU count)` configuration, optionally
/// with the Chapter V enhancement, and returns the measured throughput.
///
/// # Panics
///
/// Panics if the graph cannot be partitioned or mapped — the benchmark
/// applications are all known to succeed.
pub fn run_config(
    graph: &StreamGraph,
    gpu: &GpuSpec,
    gpus: usize,
    stack: Stack,
    enhanced: bool,
) -> RunResult {
    let platform = Platform::homogeneous(gpu.clone(), gpus);
    let estimator = Estimator::new(graph, gpu.clone())
        .expect("benchmark graphs have consistent rates")
        .with_enhancement(enhanced);
    let partitioning =
        partition_with(&estimator, stack.partitioner()).expect("partitioning succeeds");
    run_mapped(graph, &estimator, &partitioning, &platform, stack)
}

/// Maps an existing partitioning onto the platform and measures it. Splitting
/// this from [`run_config`] lets the sweeps partition once per `(app, N)` and
/// reuse the result for every GPU count, exactly as the paper does.
pub fn run_mapped(
    graph: &StreamGraph,
    estimator: &Estimator<'_>,
    partitioning: &Partitioning,
    platform: &Platform,
    stack: Stack,
) -> RunResult {
    let reps = graph.repetition_vector().expect("consistent rates");
    let pdg = build_pdg(graph, &reps, partitioning);
    let mapping_options = MappingOptions {
        time_limit: Duration::from_secs(3),
        max_nodes: 300,
        comm_aware: true,
        relative_gap: 0.0,
    };
    let mapping =
        map_with(&pdg, platform, stack.mapper(), &mapping_options).expect("mapping succeeds");
    let plan_options = PlanOptions {
        transfer_mode: stack.transfer_mode(),
        ..PlanOptions::default()
    };
    let (plan, _kernels) = build_execution_plan(
        estimator,
        partitioning,
        &pdg,
        &mapping,
        platform,
        &plan_options,
    );
    let stats = simulate_plan(&plan, platform);
    let iterations = u64::from(plan.n_fragments) * plan_options.iterations_per_fragment;
    RunResult {
        partitions: partitioning.len(),
        gpus_used: mapping.gpus_used(),
        time_per_iteration_us: stats.makespan_us / iterations as f64,
    }
}

/// Builds the estimator + partitioning for an `(app, N, stack)` triple.
///
/// # Panics
///
/// Panics if the application graph cannot be built or partitioned.
pub fn partition_app<'g>(
    graph: &'g StreamGraph,
    gpu: &GpuSpec,
    stack: Stack,
    enhanced: bool,
) -> (Estimator<'g>, Partitioning) {
    let estimator = Estimator::new(graph, gpu.clone())
        .expect("benchmark graphs have consistent rates")
        .with_enhancement(enhanced);
    let partitioning =
        partition_with(&estimator, stack.partitioner()).expect("partitioning succeeds");
    (estimator, partitioning)
}

/// Returns the N sweep to use: the paper's full sweep with `--full`, a
/// representative subset otherwise.
pub fn sweep(app: App, full: bool) -> Vec<u32> {
    if full {
        app.paper_n_values()
    } else {
        app.quick_n_values()
    }
}

/// Prints every failed point of a sweep report (with the captured cause) and
/// exits non-zero if there was any. The figure binaries call this right after
/// `run_sweep` so a failing grid point surfaces its real error instead of a
/// later `expect` panic on a missing record.
pub fn exit_on_failed_points(report: &sgmap_sweep::SweepReport) {
    let mut failed = false;
    for r in report.records.iter().filter(|r| !r.is_ok()) {
        failed = true;
        eprintln!(
            "sweep point failed: {} N={} {} G={} [{}{}]: {}",
            r.app.name(),
            r.n,
            r.gpu_model,
            r.gpus,
            r.stack,
            if r.enhanced { ", enhanced" } else { "" },
            r.error.as_deref().unwrap_or("unknown error")
        );
    }
    if failed {
        std::process::exit(1);
    }
}

/// `true` if the harness was invoked with `--full`.
pub fn full_sweep_requested() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Prints the engine-level summary of a sweep — compile-group dedup and
/// estimator-cache counters — to stderr, keeping stdout clean for the
/// figure's table.
pub fn eprintln_sweep_summary(report: &sgmap_sweep::SweepReport) {
    emit_sweep_summary(report, None);
}

/// [`eprintln_sweep_summary`] with an optional trace collector: besides the
/// stderr line, the same numbers land in the trace as a `sweep.summary`
/// instant event, so a captured trace is self-describing about the sweep it
/// came from.
pub fn emit_sweep_summary(report: &sgmap_sweep::SweepReport, trace: sgmap_trace::TraceRef<'_>) {
    sgmap_trace::instant(
        trace,
        "sweep.summary",
        vec![
            ("points", (report.records.len() as u64).into()),
            ("compile_groups", report.dedup.compile_groups.into()),
            ("cache_hits", report.cache.hits.into()),
            ("cache_misses", report.cache.misses.into()),
        ],
    );
    eprintln!(
        "sweep '{}': {} points in {} compile groups ({} compiles saved); cache {} hits / {} misses ({:.0}% hit rate)",
        report.spec_name,
        report.records.len(),
        report.dedup.compile_groups,
        report.dedup.compiles_saved(),
        report.cache.hits,
        report.cache.misses,
        report.cache.hit_rate() * 100.0,
    );
}

/// Geometric mean of a slice (1.0 for an empty slice).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a slice (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_helpers() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 1.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-9);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn run_config_produces_sane_numbers() {
        let graph = App::FmRadio.build(4).unwrap();
        let gpu = GpuSpec::m2090();
        let ours = run_config(&graph, &gpu, 2, Stack::Ours, false);
        let spsg = run_config(&graph, &gpu, 1, Stack::Spsg, false);
        assert!(ours.time_per_iteration_us > 0.0);
        assert_eq!(spsg.partitions, 1);
        assert!(ours.partitions >= spsg.partitions);
    }
}
