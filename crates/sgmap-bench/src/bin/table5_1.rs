//! Table 5.1 — splitter/joiner elimination (Chapter V).
//!
//! Runtime of the single-partition single-GPU mapping with and without the
//! enhancement that removes splitters and joiners from the generated kernels,
//! for FFT (N = 512, 256, 128) and Bitonic (N = 64, 32, 16). The paper
//! reports speedups of 1.44–1.66x for FFT and up to 5x for Bitonic.
//!
//! The grid is the `enhancement` sweep preset (SPSG on one GPU, with and
//! without the Chapter-V enhancement), executed by the `sgmap-sweep` engine;
//! this binary only formats the report.

use sgmap_apps::App;
use sgmap_bench::{eprintln_sweep_summary, exit_on_failed_points};
use sgmap_sweep::{run_sweep, SweepSpec};

fn main() {
    let spec = SweepSpec::enhancement();
    let report = run_sweep(&spec, 0).expect("the enhancement grid is valid");
    exit_on_failed_points(&report);
    eprintln_sweep_summary(&report);

    println!("# Table 5.1: runtime (ms per 16384 iterations) original vs enhanced, 1 GPU");
    println!(
        "{:<10} {:>6} {:>14} {:>14} {:>9}",
        "app", "N", "original(ms)", "enhanced(ms)", "speedup"
    );

    let cases = [
        (App::Fft, [512u32, 256, 128]),
        (App::Bitonic, [64u32, 32, 16]),
    ];
    for (app, ns) in cases {
        for n in ns {
            // Report the run of all pipelined fragments in milliseconds,
            // like the paper's table does.
            let ms = |enhanced: bool| {
                report
                    .find(app, n, 1, "spsg", None, Some(enhanced))
                    .expect("every enhancement point runs")
                    .time_per_iteration_us
                    * 16384.0
                    / 1000.0
            };
            let (original, enhanced) = (ms(false), ms(true));
            println!(
                "{:<10} {:>6} {:>14.2} {:>14.2} {:>9.2}",
                app.name(),
                n,
                original,
                enhanced,
                original / enhanced
            );
        }
    }
    println!();
    println!("Paper reference: FFT 1.44-1.66x, Bitonic 1.05-5.01x.");
    eprintln!(
        "[sweep: {} points on {} threads in {:.2}s, cache hit rate {:.0}%]",
        report.records.len(),
        report.threads,
        report.wall_clock.as_secs_f64(),
        report.cache.hit_rate() * 100.0
    );
}
