//! Table 5.1 — splitter/joiner elimination (Chapter V).
//!
//! Runtime of the single-partition single-GPU mapping with and without the
//! enhancement that removes splitters and joiners from the generated kernels,
//! for FFT (N = 512, 256, 128) and Bitonic (N = 64, 32, 16). The paper
//! reports speedups of 1.44–1.66x for FFT and up to 5x for Bitonic.

use sgmap_apps::App;
use sgmap_bench::{partition_app, run_mapped, Stack};
use sgmap_gpusim::{GpuSpec, Platform};

fn main() {
    let gpu = GpuSpec::m2090();
    let platform = Platform::homogeneous(gpu.clone(), 1);
    println!("# Table 5.1: runtime (ms per 16384 iterations) original vs enhanced, 1 GPU");
    println!(
        "{:<10} {:>6} {:>14} {:>14} {:>9}",
        "app", "N", "original(ms)", "enhanced(ms)", "speedup"
    );

    let cases = [
        (App::Fft, [512u32, 256, 128]),
        (App::Bitonic, [64u32, 32, 16]),
    ];
    for (app, ns) in cases {
        for n in ns {
            let graph = app.build(n).expect("benchmark graph builds");
            let mut times = Vec::new();
            for enhanced in [false, true] {
                let (est, part) = partition_app(&graph, &gpu, Stack::Spsg, enhanced);
                let r = run_mapped(&graph, &est, &part, &platform, Stack::Spsg);
                // Report the run of all pipelined fragments in milliseconds,
                // like the paper's table does.
                times.push(r.time_per_iteration_us * 16384.0 / 1000.0);
            }
            println!(
                "{:<10} {:>6} {:>14.2} {:>14.2} {:>9.2}",
                app.name(),
                n,
                times[0],
                times[1],
                times[0] / times[1]
            );
        }
    }
    println!();
    println!("Paper reference: FFT 1.44-1.66x, Bitonic 1.05-5.01x.");
}
