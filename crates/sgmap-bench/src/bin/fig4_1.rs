//! Figure 4.1 — accuracy of the GPU performance estimation.
//!
//! For every partition produced by the proposed partitioner across the whole
//! benchmark suite, compare the PEE's predicted kernel time against the
//! "actual" time measured by the cycle-approximate kernel simulator, and
//! report the R² of the correlation (the paper reports R² = 0.972 over about
//! 350 partitions).

use sgmap_apps::App;
use sgmap_bench::{full_sweep_requested, partition_app, sweep, Stack};
use sgmap_codegen::generate_kernel;
use sgmap_gpusim::{simulate_kernel, GpuSpec};
use sgmap_pee::calibrate::r_squared;

fn main() {
    let full = full_sweep_requested();
    let gpu = GpuSpec::m2090();
    let mut predicted = Vec::new();
    let mut actual = Vec::new();

    println!("# Figure 4.1: estimated vs actual kernel runtime (us, per execution)");
    println!(
        "{:<12} {:>6} {:>12} {:>12}",
        "app", "N", "partitions", "samples"
    );
    for app in App::all() {
        for n in sweep(app, full) {
            let graph = app.build(n).expect("benchmark graph builds");
            let (estimator, partitioning) = partition_app(&graph, &gpu, Stack::Ours, false);
            for (idx, part) in partitioning.iter().enumerate() {
                let spec = generate_kernel(&estimator, part, &format!("{app}_{n}_{idx}"));
                let measurement = simulate_kernel(&spec, &gpu, (idx as u64) << 17 | u64::from(n));
                predicted.push(part.estimate.normalized_us);
                actual.push(measurement.time_us / f64::from(spec.params.w.max(1)));
            }
            println!(
                "{:<12} {:>6} {:>12} {:>12}",
                app.name(),
                n,
                partitioning.len(),
                predicted.len()
            );
        }
    }

    let r2 = r_squared(&predicted, &actual);
    println!();
    println!("estimated-vs-actual sample pairs: {}", predicted.len());
    println!("R^2 = {r2:.4}   (paper: 0.972 over ~350 partitions)");

    // A linear fit of actual on estimated, as printed on the paper's plot
    // (y = 0.9757 x + 0.9744).
    let (slope, intercept) = sgmap_pee::calibrate::fit_linear(&predicted, &actual);
    println!("actual = {slope:.4} * estimated + {intercept:.4}");

    // A few representative points for eyeballing the scatter.
    println!();
    println!("{:>14} {:>14}", "estimated(us)", "actual(us)");
    let mut order: Vec<usize> = (0..predicted.len()).collect();
    order.sort_by(|&a, &b| predicted[a].total_cmp(&predicted[b]));
    for &i in order.iter().step_by((order.len() / 12).max(1)) {
        println!("{:>14.3} {:>14.3}", predicted[i], actual[i]);
    }
}
