//! `perfbench`: the repository's performance harness.
//!
//! Times the phases of single compiles (graph build, estimator/profile
//! construction, the partition search, mapping + code generation) on a fixed
//! set of compile targets, then the multilevel partitioner's scaling curve
//! on seeded synthetic graphs (1k–10k filters), then a full sweep preset,
//! and emits the results as `BENCH.json` — the canonical perf artefact CI
//! uploads so the project accumulates a wall-clock trajectory to optimise
//! against.
//!
//! ```text
//! perfbench [--preset NAME] [--threads N] [--out FILE] [--cache-file FILE]
//!           [--trace FILE] [--metrics FILE]
//! perfbench --check BENCH.json
//! ```
//!
//! * `--preset NAME` — which sweep preset to time (default `quick`).
//! * `--threads N` — worker threads for the sweep phase (default 1: phase
//!   timings are single-core numbers, comparable across machines).
//! * `--out FILE` — write `BENCH.json` to `FILE` instead of stdout.
//! * `--cache-file FILE` — persist the shared estimator cache: load it
//!   before the sweep (if the file exists), save it afterwards, and report
//!   the warm-start sweep separately. A second run with the same file should
//!   report zero shared-cache misses.
//! * `--trace FILE` — dump the run's trace (every compile phase, ILP node,
//!   sweep point) as Chrome trace-event JSON, loadable in `chrome://tracing`
//!   or [Perfetto](https://ui.perfetto.dev).
//! * `--metrics FILE` — dump the trace's aggregate counters / histograms /
//!   span totals as canonical metrics JSON.
//! * `--check FILE` — validate a previously written `BENCH.json` (pure-Rust
//!   schema check, the exact validator CI runs) and exit 0/1.
//!
//! The trace collector is always on — the per-phase
//! `partition_phase1_ms`..`partition_phase4_ms` fields of `BENCH.json` are
//! read back from its span totals — so `--trace` / `--metrics` only control
//! whether the already-collected data is written out.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use sgmap_apps::App;
use sgmap_core::{
    compile_from_stage, execute, partition_graph, Algorithm, FlowConfig, MultilevelOptions,
    PartitionSearchOptions,
};
use sgmap_mapping::{map_on_survivors, repair_mapping, RepairOptions};
use sgmap_pee::{EstimateCache, Estimator};
use sgmap_sweep::{
    check_bench_report, load_cache_file_if_exists, run_sweep_with_cache_traced, save_cache_file,
    JsonValue, SweepSpec,
};
use sgmap_trace::Collector;

const USAGE: &str = "usage: perfbench [--preset NAME] [--threads N] [--out FILE] [--cache-file FILE] [--trace FILE] [--metrics FILE]\n       perfbench --check BENCH.json";

/// Schema version of the emitted `BENCH.json`. Version 2 added the
/// `synthetic_scaling` section (the multilevel partitioner's scaling curve on
/// generated graphs); version 3 added the per-compile `lp_refactorizations` /
/// `ilp_gap` fields and the `budget_bounded` section (a node-capped large
/// mapping solve recording its reported optimality gap); version 4 added the
/// `repair` section (degradation-aware remapping after a device loss, timed
/// against a full recompile) and the `stability` section (the robustness
/// preset's mapping-stability summary under model perturbations). Older
/// reports no longer validate.
const BENCH_FORMAT_VERSION: u64 = 4;

/// The fixed single-compile targets: one representative (app, N) per
/// application family, sized so one compile takes long enough to time
/// reliably but the whole suite stays in CI-smoke territory.
const COMPILE_TARGETS: &[(App, u32)] = &[
    (App::Des, 8),
    (App::FmRadio, 16),
    (App::Fft, 64),
    (App::Bitonic, 16),
    (App::MatMul2, 4),
];

/// The synthetic scaling curve: seeded generated pipelines far past the
/// paper's benchmark sizes, compiled with the multilevel partitioner. The
/// largest point is the scaling gate — a 10k-filter graph must partition and
/// map end-to-end on a single core within CI's patience.
const SYNTHETIC_TARGETS: &[(App, u32)] = &[
    (App::SynthPipe, 1_000),
    (App::SynthPipe, 5_000),
    (App::SynthPipe, 10_000),
];

struct Args {
    preset: String,
    threads: usize,
    out: Option<String>,
    cache_file: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    check: Option<String>,
    help: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        preset: "quick".to_string(),
        threads: 1,
        out: None,
        cache_file: None,
        trace: None,
        metrics: None,
        check: None,
        help: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => args.preset = it.next().ok_or("--preset needs a value")?,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v
                    .parse()
                    .map_err(|_| format!("--threads: not a number: {v}"))?;
            }
            "--out" => args.out = Some(it.next().ok_or("--out needs a value")?),
            "--cache-file" => {
                args.cache_file = Some(it.next().ok_or("--cache-file needs a value")?);
            }
            "--trace" => args.trace = Some(it.next().ok_or("--trace needs a value")?),
            "--metrics" => args.metrics = Some(it.next().ok_or("--metrics needs a value")?),
            "--check" => args.check = Some(it.next().ok_or("--check needs a report file")?),
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1000.0
}

/// Sum of the recorded `partition.phaseK` span durations, milliseconds.
fn phase_totals_ms(collector: &Collector) -> [f64; 4] {
    let totals = collector.span_totals();
    let total = |name: &str| totals.get(name).map_or(0.0, |t| t.total_us / 1000.0);
    [
        total("partition.phase1"),
        total("partition.phase2"),
        total("partition.phase3"),
        total("partition.phase4"),
    ]
}

/// Times every phase of one compile (single-threaded, serial search — the
/// interactive-compile configuration) and returns the JSON record. The
/// per-phase partition timings come from the collector's span totals, so the
/// compile runs with tracing attached.
fn bench_compile(app: App, n: u32, collector: &Arc<Collector>) -> JsonValue {
    let trace = Some(collector);
    let config = FlowConfig::new()
        .with_gpu_count(2)
        .with_partition_search(PartitionSearchOptions::serial())
        .with_trace(collector.clone());
    let cache = EstimateCache::shared();

    let t0 = Instant::now();
    let graph = app.build_traced(n, trace).expect("compile targets build");
    let build_ms = ms(t0);

    let t1 = Instant::now();
    let estimator = Estimator::new(&graph, config.estimation_gpu().clone())
        .expect("compile targets have consistent rates")
        .with_shared_cache(cache.clone())
        .with_trace(Some(collector.clone()));
    let estimator_ms = ms(t1);

    let phases_before = phase_totals_ms(collector);
    let t2 = Instant::now();
    let stage = partition_graph(&graph, &config, &estimator).expect("partitioning succeeds");
    let partition_ms = ms(t2);
    let phases_after = phase_totals_ms(collector);
    let phase_ms: Vec<f64> = phases_after
        .iter()
        .zip(phases_before)
        .map(|(after, before)| (after - before).max(0.0))
        .collect();

    let t3 = Instant::now();
    let compiled =
        compile_from_stage(&graph, &config, &estimator, &stage).expect("mapping succeeds");
    let finish_ms = ms(t3);

    let t4 = Instant::now();
    let report = execute(&compiled, &config);
    let execute_ms = ms(t4);

    let stats = cache.stats();
    let ilp = compiled.mapping.ilp_stats;
    let total_ms = build_ms + estimator_ms + partition_ms + finish_ms;
    let estimates_per_sec = if partition_ms > 0.0 {
        stats.queries() as f64 / (partition_ms / 1000.0)
    } else {
        0.0
    };
    eprintln!(
        "compile {:>8} N={:<4} {:7.1} ms (build {:.1}, estimator {:.1}, partition {:.1}, map+plan {:.1}) — {} partitions, {} estimates ({:.0}/s), ilp {} nodes / {} pivots / {} warm",
        app.name(), n, total_ms, build_ms, estimator_ms, partition_ms, finish_ms,
        compiled.partition_count(), stats.queries(), estimates_per_sec,
        ilp.nodes, ilp.lp_iterations, ilp.lp_warm_starts,
    );
    JsonValue::object(vec![
        ("app", JsonValue::str(app.name())),
        ("n", JsonValue::Uint(u64::from(n))),
        ("platform", JsonValue::str(&*config.platform.name)),
        ("filters", JsonValue::Uint(graph.filter_count() as u64)),
        (
            "partitions",
            JsonValue::Uint(compiled.partition_count() as u64),
        ),
        ("ilp_nodes", JsonValue::Uint(ilp.nodes)),
        ("lp_iterations", JsonValue::Uint(ilp.lp_iterations)),
        ("lp_warm_starts", JsonValue::Uint(ilp.lp_warm_starts)),
        ("lp_refactorizations", JsonValue::Uint(ilp.refactorizations)),
        ("ilp_gap", JsonValue::Float(ilp.optimality_gap)),
        ("build_ms", JsonValue::Float(build_ms)),
        ("estimator_ms", JsonValue::Float(estimator_ms)),
        ("partition_ms", JsonValue::Float(partition_ms)),
        ("partition_phase1_ms", JsonValue::Float(phase_ms[0])),
        ("partition_phase2_ms", JsonValue::Float(phase_ms[1])),
        ("partition_phase3_ms", JsonValue::Float(phase_ms[2])),
        ("partition_phase4_ms", JsonValue::Float(phase_ms[3])),
        ("finish_ms", JsonValue::Float(finish_ms)),
        ("execute_ms", JsonValue::Float(execute_ms)),
        ("total_ms", JsonValue::Float(total_ms)),
        ("estimate_queries", JsonValue::Uint(stats.queries())),
        ("estimate_misses", JsonValue::Uint(stats.misses)),
        ("estimates_per_sec", JsonValue::Float(estimates_per_sec)),
        (
            "time_per_iteration_us",
            JsonValue::Float(report.time_per_iteration_us),
        ),
    ])
}

/// Total recorded duration of one span name, milliseconds.
fn span_total_ms(collector: &Collector, name: &str) -> f64 {
    collector
        .span_totals()
        .get(name)
        .map_or(0.0, |t| t.total_us / 1000.0)
}

/// Times one point of the synthetic scaling curve: a seeded generated graph
/// compiled with the multilevel partitioner (single-threaded, serial
/// search). The multilevel phase breakdown — coarsening, initial
/// partitioning of the coarsest graph, refinement — is read back from the
/// collector's span totals, and the level count from its counters.
fn bench_synthetic(app: App, n: u32, collector: &Arc<Collector>) -> JsonValue {
    let trace = Some(collector);
    let config = FlowConfig::new()
        .with_gpu_count(2)
        .with_algorithm(Algorithm::Multilevel(MultilevelOptions::default()))
        .with_partition_search(PartitionSearchOptions::serial())
        .with_trace(collector.clone());

    let t0 = Instant::now();
    let graph = app.build_traced(n, trace).expect("synthetic targets build");
    let build_ms = ms(t0);

    let t1 = Instant::now();
    let estimator = Estimator::new(&graph, config.estimation_gpu().clone())
        .expect("synthetic targets have consistent rates")
        .with_trace(Some(collector.clone()));
    let estimator_ms = ms(t1);

    let spans_before: Vec<f64> = ["partition.coarsen", "partition.initial", "partition.refine"]
        .iter()
        .map(|name| span_total_ms(collector, name))
        .collect();
    let levels_before = collector.counter("partition.coarsen_levels");
    let t2 = Instant::now();
    let stage = partition_graph(&graph, &config, &estimator).expect("partitioning succeeds");
    let partition_ms = ms(t2);
    let spans_after: Vec<f64> = ["partition.coarsen", "partition.initial", "partition.refine"]
        .iter()
        .map(|name| span_total_ms(collector, name))
        .collect();
    let coarsen_levels = collector.counter("partition.coarsen_levels") - levels_before;

    let t3 = Instant::now();
    let compiled =
        compile_from_stage(&graph, &config, &estimator, &stage).expect("mapping succeeds");
    let map_ms = ms(t3);

    let total_ms = build_ms + estimator_ms + partition_ms + map_ms;
    eprintln!(
        "synthetic {:>9} N={:<6} {:8.1} ms (build {:.1}, estimator {:.1}, partition {:.1}, map+plan {:.1}) — {} filters -> {} partitions over {} coarsen levels",
        app.name(), n, total_ms, build_ms, estimator_ms, partition_ms, map_ms,
        graph.filter_count(), compiled.partition_count(), coarsen_levels,
    );
    JsonValue::object(vec![
        ("app", JsonValue::str(app.name())),
        ("n", JsonValue::Uint(u64::from(n))),
        ("filters", JsonValue::Uint(graph.filter_count() as u64)),
        (
            "partitions",
            JsonValue::Uint(compiled.partition_count() as u64),
        ),
        ("coarsen_levels", JsonValue::Uint(coarsen_levels)),
        ("build_ms", JsonValue::Float(build_ms)),
        ("estimator_ms", JsonValue::Float(estimator_ms)),
        (
            "coarsen_ms",
            JsonValue::Float((spans_after[0] - spans_before[0]).max(0.0)),
        ),
        (
            "initial_ms",
            JsonValue::Float((spans_after[1] - spans_before[1]).max(0.0)),
        ),
        (
            "refine_ms",
            JsonValue::Float((spans_after[2] - spans_before[2]).max(0.0)),
        ),
        ("partition_ms", JsonValue::Float(partition_ms)),
        ("map_ms", JsonValue::Float(map_ms)),
        ("total_ms", JsonValue::Float(total_ms)),
    ])
}

/// Times a budget-bounded large mapping solve: a synthetic split-join graph
/// whose branch-and-bound is capped to a small node budget, so the solve is
/// answered by the best-bound frontier with a reported optimality gap — the
/// configuration time/node-limited production solves run in. Records the
/// gap so the perf trajectory tracks *solution quality under budget*, not
/// just wall-clock.
fn bench_budget_bounded(
    app: App,
    n: u32,
    max_nodes: usize,
    collector: &Arc<Collector>,
) -> JsonValue {
    let trace = Some(collector);
    let mut config = FlowConfig::new()
        .with_gpu_count(4)
        .with_algorithm(Algorithm::Multilevel(MultilevelOptions::default()))
        .with_partition_search(PartitionSearchOptions::serial())
        .with_trace(collector.clone());
    config.mapping_options.max_nodes = max_nodes;

    let graph = app.build_traced(n, trace).expect("synthetic targets build");
    let estimator = Estimator::new(&graph, config.estimation_gpu().clone())
        .expect("synthetic targets have consistent rates")
        .with_trace(Some(collector.clone()));
    let stage = partition_graph(&graph, &config, &estimator).expect("partitioning succeeds");

    let t = Instant::now();
    let compiled =
        compile_from_stage(&graph, &config, &estimator, &stage).expect("mapping succeeds");
    let map_ms = ms(t);
    let ilp = compiled.mapping.ilp_stats;
    eprintln!(
        "budget {:>9} N={:<6} map+plan {:7.1} ms under max_nodes={} — ilp {} nodes, gap {:.4}",
        app.name(),
        n,
        map_ms,
        max_nodes,
        ilp.nodes,
        ilp.optimality_gap,
    );
    JsonValue::object(vec![
        ("app", JsonValue::str(app.name())),
        ("n", JsonValue::Uint(u64::from(n))),
        ("max_nodes", JsonValue::Uint(max_nodes as u64)),
        (
            "partitions",
            JsonValue::Uint(compiled.partition_count() as u64),
        ),
        ("ilp_nodes", JsonValue::Uint(ilp.nodes)),
        ("ilp_gap", JsonValue::Float(ilp.optimality_gap)),
        ("lp_iterations", JsonValue::Uint(ilp.lp_iterations)),
        ("map_ms", JsonValue::Float(map_ms)),
    ])
}

/// Times degradation-aware repair against a full recompile after a device
/// loss: compiles `app` at `n` on the 4-GPU paper box, kills one device the
/// baseline mapping actually uses, then measures (a) `repair_mapping` — the
/// greedy patch plus tightly budgeted warm-started ILP polish — against (b)
/// re-running the partition search and a full-budget survivor mapping from
/// scratch. The checker enforces the acceptance bar: repair at least 5×
/// faster while staying within 10 % of the recompile objective.
fn bench_repair(app: App, n: u32, collector: &Arc<Collector>) -> JsonValue {
    let trace = Some(collector);
    let config = FlowConfig::new()
        .with_gpu_count(4)
        .with_partition_search(PartitionSearchOptions::serial())
        .with_trace(collector.clone());
    let graph = app.build_traced(n, trace).expect("compile targets build");
    let estimator = Estimator::new(&graph, config.estimation_gpu().clone())
        .expect("compile targets have consistent rates")
        .with_trace(Some(collector.clone()));
    let stage = partition_graph(&graph, &config, &estimator).expect("partitioning succeeds");
    let compiled =
        compile_from_stage(&graph, &config, &estimator, &stage).expect("mapping succeeds");
    let lost_gpu = compiled.mapping.assignment[0];

    let t = Instant::now();
    let (repaired, stats) = repair_mapping(
        &compiled.pdg,
        &compiled.platform,
        &compiled.mapping,
        lost_gpu,
        &RepairOptions::default(),
        trace,
    )
    .expect("repair succeeds");
    let repair_ms = ms(t);

    // The alternative to repairing: throw the compile away and redo it for
    // the survivors — partition search and full-budget mapping included.
    // (The estimator cache is warm from the baseline compile, which only
    // makes the comparison harder on the repair path.)
    let t = Instant::now();
    let restage = partition_graph(&graph, &config, &estimator).expect("partitioning succeeds");
    let recompiled = map_on_survivors(
        &restage.pdg,
        &compiled.platform,
        lost_gpu,
        &config.mapping_options,
        trace,
    )
    .expect("survivor mapping succeeds");
    let recompile_ms = ms(t);

    let speedup = recompile_ms / repair_ms.max(1e-9);
    let objective_ratio = repaired.predicted_tmax_us / recompiled.predicted_tmax_us;
    eprintln!(
        "repair {:>9} N={:<6} lost GPU {}: {:7.2} ms vs recompile {:7.1} ms ({:.1}x), objective ratio {:.4}",
        app.name(),
        n,
        lost_gpu,
        repair_ms,
        recompile_ms,
        speedup,
        objective_ratio,
    );
    JsonValue::object(vec![
        ("app", JsonValue::str(app.name())),
        ("n", JsonValue::Uint(u64::from(n))),
        ("gpus", JsonValue::Uint(4)),
        ("lost_gpu", JsonValue::Uint(lost_gpu as u64)),
        (
            "moved_partitions",
            JsonValue::Uint(stats.moved_partitions as u64),
        ),
        ("repair_ms", JsonValue::Float(repair_ms)),
        ("recompile_ms", JsonValue::Float(recompile_ms)),
        ("speedup", JsonValue::Float(speedup)),
        (
            "repair_tmax_us",
            JsonValue::Float(repaired.predicted_tmax_us),
        ),
        (
            "recompile_tmax_us",
            JsonValue::Float(recompiled.predicted_tmax_us),
        ),
        ("objective_ratio", JsonValue::Float(objective_ratio)),
    ])
}

/// Runs the robustness preset and flattens its stability analysis into the
/// BENCH record: how often the mapping survives ±5/±10/±20 % perturbations
/// of the bandwidth/latency/throughput model unchanged, and the largest
/// objective spread those perturbations induce.
fn bench_stability(threads: usize, collector: &Arc<Collector>) -> JsonValue {
    let spec = SweepSpec::robustness();
    let cache = EstimateCache::shared();
    let t = Instant::now();
    let report = run_sweep_with_cache_traced(&spec, threads, cache, Some(collector))
        .expect("robustness preset expands");
    let wall_ms = ms(t);
    let failed = report.records.iter().filter(|r| !r.is_ok()).count() as u64;
    let stability = report
        .stability
        .as_ref()
        .expect("robustness preset computes stability");
    eprintln!(
        "stability '{}': {} points in {:.0} ms; {}/{} mappings unchanged, max objective spread {:.4}",
        spec.name,
        report.records.len(),
        wall_ms,
        stability.unchanged_mappings,
        stability.compared_points,
        stability.max_objective_spread,
    );
    JsonValue::object(vec![
        ("preset", JsonValue::str(&*spec.name)),
        ("points", JsonValue::Uint(report.records.len() as u64)),
        ("failed_points", JsonValue::Uint(failed)),
        ("wall_ms", JsonValue::Float(wall_ms)),
        (
            "baseline_platform",
            JsonValue::str(&*stability.baseline_platform),
        ),
        (
            "compared_points",
            JsonValue::Uint(stability.compared_points),
        ),
        (
            "unchanged_mappings",
            JsonValue::Uint(stability.unchanged_mappings),
        ),
        (
            "mapping_stability",
            JsonValue::Float(stability.mapping_stability),
        ),
        (
            "max_objective_spread",
            JsonValue::Float(stability.max_objective_spread),
        ),
    ])
}

/// Runs the sweep preset against `cache` and returns its JSON record.
fn bench_sweep(
    spec: &SweepSpec,
    threads: usize,
    cache: &Arc<EstimateCache>,
    collector: &Arc<Collector>,
) -> JsonValue {
    let before = cache.stats();
    let t = Instant::now();
    let report = run_sweep_with_cache_traced(spec, threads, cache.clone(), Some(collector))
        .expect("preset specs expand");
    let wall_ms = ms(t);
    let after = cache.stats();
    let (hits, misses) = (after.hits - before.hits, after.misses - before.misses);
    let failed = report.records.iter().filter(|r| !r.is_ok()).count() as u64;
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    eprintln!(
        "sweep '{}': {} points in {:.0} ms; cache {} hits / {} misses ({:.0}% hit rate)",
        spec.name,
        report.records.len(),
        wall_ms,
        hits,
        misses,
        hit_rate * 100.0,
    );
    sgmap_trace::instant(
        Some(collector),
        "sweep.summary",
        vec![
            ("points", (report.records.len() as u64).into()),
            ("compile_groups", report.dedup.compile_groups.into()),
            ("cache_hits", hits.into()),
            ("cache_misses", misses.into()),
        ],
    );
    JsonValue::object(vec![
        ("preset", JsonValue::str(&*spec.name)),
        ("points", JsonValue::Uint(report.records.len() as u64)),
        ("failed_points", JsonValue::Uint(failed)),
        ("wall_ms", JsonValue::Float(wall_ms)),
        (
            "cache",
            JsonValue::object(vec![
                ("hits", JsonValue::Uint(hits)),
                ("misses", JsonValue::Uint(misses)),
                ("entries", JsonValue::Uint(after.entries)),
                ("hit_rate", JsonValue::Float(hit_rate)),
            ]),
        ),
        (
            "dedup",
            JsonValue::object(vec![
                (
                    "expanded_points",
                    JsonValue::Uint(report.dedup.expanded_points),
                ),
                (
                    "compile_groups",
                    JsonValue::Uint(report.dedup.compile_groups),
                ),
                (
                    "compiles_saved",
                    JsonValue::Uint(report.dedup.compiles_saved()),
                ),
            ]),
        ),
    ])
}

fn run_check(path: &str) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check_bench_report(&src) {
        Ok(summary) => {
            eprintln!("{path}: OK — {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: FAILED — {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &args.check {
        return run_check(path);
    }

    let spec = match SweepSpec::preset(&args.preset) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Load (and thereby validate) the cache file up front, before the timed
    // compile suite runs — a corrupt or stale file should fail in
    // milliseconds, not after minutes of benchmarking.
    let cache = EstimateCache::shared();
    let mut preloaded = 0u64;
    if let Some(path) = &args.cache_file {
        match load_cache_file_if_exists(path, &cache) {
            Ok(n) => preloaded = n,
            Err(e) => {
                eprintln!("cannot load cache file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if preloaded > 0 {
            eprintln!("warm start: {preloaded} cache entries loaded from {path}");
        }
    }

    // The collector is always on: the per-phase partition timings in the
    // compile records are read back from its span totals.
    let collector = Arc::new(Collector::new());
    let compiles: Vec<JsonValue> = COMPILE_TARGETS
        .iter()
        .map(|&(app, n)| bench_compile(app, n, &collector))
        .collect();

    // The synthetic scaling curve: each point gets its own estimator (no
    // shared cache) so the timings measure the multilevel partitioner cold.
    let synthetic: Vec<JsonValue> = SYNTHETIC_TARGETS
        .iter()
        .map(|&(app, n)| bench_synthetic(app, n, &collector))
        .collect();

    // The budget-bounded point: a large mapping solve under a hard node cap,
    // recording the optimality gap the truncated search reports.
    let budget_bounded = bench_budget_bounded(App::SynthPipe, 5_000, 40, &collector);

    // The repair point: degradation-aware remapping after a device loss,
    // timed against the full recompile it replaces.
    let repair = bench_repair(App::FmRadio, 16, &collector);

    // The stability section: the robustness preset's mapping-stability
    // summary under model perturbations.
    let stability = bench_stability(args.threads, &collector);

    // The sweep phase: cold against a fresh cache, or warm-started from (and
    // saved back to) --cache-file.
    let sweep = bench_sweep(&spec, args.threads, &cache, &collector);
    if let Some(path) = &args.cache_file {
        // The cache save speeds up the *next* run; a write failure must not
        // discard the measurements this run just produced.
        match save_cache_file(path, &cache) {
            Ok(n) => eprintln!("{n} cache entries saved to {path}"),
            Err(e) => sgmap_trace::warn(
                Some(&collector),
                "cache.save_failed",
                format!("estimate cache not persisted: {e}"),
            ),
        }
    }

    let mut fields = vec![
        ("version", JsonValue::Uint(BENCH_FORMAT_VERSION)),
        ("preset", JsonValue::str(&*spec.name)),
        ("compiles", JsonValue::Array(compiles)),
        ("synthetic_scaling", JsonValue::Array(synthetic)),
        ("budget_bounded", budget_bounded),
        ("repair", repair),
        ("stability", stability),
        ("sweep", sweep),
    ];
    if args.cache_file.is_some() {
        fields.push(("cache_preloaded_entries", JsonValue::Uint(preloaded)));
    }
    fields.push((
        "meta",
        JsonValue::object(vec![("threads", JsonValue::Uint(args.threads as u64))]),
    ));
    let json = JsonValue::object(fields).render();

    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("BENCH.json written to {path}");
        }
        None => println!("{json}"),
    }
    if let Some(path) = &args.trace {
        if let Err(e) = std::fs::write(path, collector.chrome_trace_json()) {
            eprintln!("cannot write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace written to {path}");
    }
    if let Some(path) = &args.metrics {
        if let Err(e) = std::fs::write(path, collector.metrics_json()) {
            eprintln!("cannot write metrics {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("metrics written to {path}");
    }
    ExitCode::SUCCESS
}
