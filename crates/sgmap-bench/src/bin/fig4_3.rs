//! Figure 4.3 — comparison with the previous work in terms of SOSP.
//!
//! SOSP (Speedup Over Single-Partition mapping) is the runtime of the
//! single-partition single-GPU mapping divided by the runtime of a
//! multi-partition multi-GPU mapping on the same hardware. The figure plots
//! SOSP of the proposed stack against the prior work's stack for the five
//! applications whose multi-GPU numbers the prior work reports, and the
//! summary table gives the average "ours / previous" SOSP ratio per GPU count
//! (paper: 1.17 / 1.33 / 1.40 / 1.47 for 1–4 GPUs).
//!
//! The grid is the `compare` sweep preset (ours and previous on 1–4 GPUs
//! plus the pinned 1-GPU SPSG reference), executed by the `sgmap-sweep`
//! engine; this binary only derives the SOSP ratios from the report.

use sgmap_bench::{eprintln_sweep_summary, exit_on_failed_points, full_sweep_requested, mean};
use sgmap_sweep::{run_sweep, SweepSpec};

fn main() {
    let full = full_sweep_requested();
    let spec = SweepSpec::compare(full);
    let report = run_sweep(&spec, 0).expect("the compare grid is valid");
    exit_on_failed_points(&report);
    eprintln_sweep_summary(&report);

    println!("# Figure 4.3: SOSP, ours vs previous work, 1-4 GPUs");
    println!(
        "{:<10} {:>6} | {:>7} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} {:>7}",
        "app", "N", "our1", "our2", "our3", "our4", "prev1", "prev2", "prev3", "prev4"
    );

    // ratio accumulators per GPU count.
    let mut ratios = vec![Vec::new(); 4];
    // Iterate the spec's own axes so the table can never drift from the grid
    // that actually ran.
    for app_sweep in &spec.apps {
        let app = app_sweep.app;
        for &n in &app_sweep.n_values {
            let spsg = report
                .find(app, n, 1, "spsg", None, None)
                .expect("SPSG reference runs at 1 GPU")
                .time_per_iteration_us;
            let time = |stack: &str, gpus: usize| {
                report
                    .find(app, n, gpus, stack, None, None)
                    .expect("every compare point runs")
                    .time_per_iteration_us
            };
            let our_sosp: Vec<f64> = (1..=4).map(|g| spsg / time("ours", g)).collect();
            let prev_sosp: Vec<f64> = (1..=4).map(|g| spsg / time("previous", g)).collect();
            println!(
                "{:<10} {:>6} | {:>7.2} {:>7.2} {:>7.2} {:>7.2} | {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
                app.name(),
                n,
                our_sosp[0],
                our_sosp[1],
                our_sosp[2],
                our_sosp[3],
                prev_sosp[0],
                prev_sosp[1],
                prev_sosp[2],
                prev_sosp[3]
            );
            for g in 0..4 {
                if prev_sosp[g] > 0.0 {
                    ratios[g].push(our_sosp[g] / prev_sosp[g]);
                }
            }
        }
    }

    println!();
    println!("SOSP ratio, ours vs previous work (paper: 1.17 / 1.33 / 1.40 / 1.47):");
    for (g, r) in ratios.iter().enumerate() {
        println!("  {}-GPU: {:.2}", g + 1, mean(r));
    }
    eprintln!(
        "[sweep: {} points on {} threads in {:.2}s, cache hit rate {:.0}%]",
        report.records.len(),
        report.threads,
        report.wall_clock.as_secs_f64(),
        report.cache.hit_rate() * 100.0
    );
}
