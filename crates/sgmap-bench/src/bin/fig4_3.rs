//! Figure 4.3 — comparison with the previous work in terms of SOSP.
//!
//! SOSP (Speedup Over Single-Partition mapping) is the runtime of the
//! single-partition single-GPU mapping divided by the runtime of a
//! multi-partition multi-GPU mapping on the same hardware. The figure plots
//! SOSP of the proposed stack against the prior work's stack for the five
//! applications whose multi-GPU numbers the prior work reports, and the
//! summary table gives the average "ours / previous" SOSP ratio per GPU count
//! (paper: 1.17 / 1.33 / 1.40 / 1.47 for 1–4 GPUs).

use sgmap_apps::App;
use sgmap_bench::{full_sweep_requested, mean, partition_app, run_mapped, sweep, Stack};
use sgmap_gpusim::{GpuSpec, Platform};

fn main() {
    let full = full_sweep_requested();
    let gpu = GpuSpec::m2090();
    println!("# Figure 4.3: SOSP, ours vs previous work, 1-4 GPUs");
    println!(
        "{:<10} {:>6} | {:>7} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} {:>7}",
        "app", "N", "our1", "our2", "our3", "our4", "prev1", "prev2", "prev3", "prev4"
    );

    // ratio accumulators per GPU count.
    let mut ratios = vec![Vec::new(); 4];
    for app in App::figure_4_3_subset() {
        let ns = sweep(app, full);
        for &n in &ns {
            let graph = app.build(n).expect("benchmark graph builds");
            // SPSG reference on the same hardware.
            let (spsg_est, spsg_part) = partition_app(&graph, &gpu, Stack::Spsg, false);
            let spsg = run_mapped(
                &graph,
                &spsg_est,
                &spsg_part,
                &Platform::homogeneous(gpu.clone(), 1),
                Stack::Spsg,
            );

            let (our_est, our_part) = partition_app(&graph, &gpu, Stack::Ours, false);
            let (prev_est, prev_part) = partition_app(&graph, &gpu, Stack::Previous, false);

            let mut our_sosp = Vec::new();
            let mut prev_sosp = Vec::new();
            for gpus in 1..=4usize {
                let platform = Platform::homogeneous(gpu.clone(), gpus);
                let ours = run_mapped(&graph, &our_est, &our_part, &platform, Stack::Ours);
                let prev = run_mapped(&graph, &prev_est, &prev_part, &platform, Stack::Previous);
                our_sosp.push(spsg.time_per_iteration_us / ours.time_per_iteration_us);
                prev_sosp.push(spsg.time_per_iteration_us / prev.time_per_iteration_us);
            }
            println!(
                "{:<10} {:>6} | {:>7.2} {:>7.2} {:>7.2} {:>7.2} | {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
                app.name(),
                n,
                our_sosp[0],
                our_sosp[1],
                our_sosp[2],
                our_sosp[3],
                prev_sosp[0],
                prev_sosp[1],
                prev_sosp[2],
                prev_sosp[3]
            );
            for g in 0..4 {
                if prev_sosp[g] > 0.0 {
                    ratios[g].push(our_sosp[g] / prev_sosp[g]);
                }
            }
        }
    }

    println!();
    println!("SOSP ratio, ours vs previous work (paper: 1.17 / 1.33 / 1.40 / 1.47):");
    for (g, r) in ratios.iter().enumerate() {
        println!("  {}-GPU: {:.2}", g + 1, mean(r));
    }
}
