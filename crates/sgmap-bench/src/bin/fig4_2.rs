//! Figure 4.2 — scalability of the proposed mapping technique.
//!
//! For every application and size parameter N, the paper's stack is mapped to
//! 1, 2, 3 and 4 GPUs and speedups are reported over the 1-GPU
//! multi-partition mapping, together with the number of partitions (the
//! x-axis annotation of the paper's figure). The paper's headline averages
//! for the largest N are 1.8x / 2.6x / 3.2x for 2 / 3 / 4 GPUs.
//!
//! The grid itself is the `scaling` sweep preset, executed by the
//! `sgmap-sweep` engine in parallel with a shared estimator cache; this
//! binary only formats the report.

use sgmap_bench::{eprintln_sweep_summary, exit_on_failed_points, full_sweep_requested, mean};
use sgmap_sweep::{run_sweep, SweepSpec};

fn main() {
    let full = full_sweep_requested();
    let spec = SweepSpec::scaling(full);
    let report = run_sweep(&spec, 0).expect("the scaling grid is valid");
    exit_on_failed_points(&report);
    eprintln_sweep_summary(&report);

    println!("# Figure 4.2: speedup over the 1-GPU multi-partition mapping");
    println!(
        "{:<12} {:>6} {:>11} {:>9} {:>9} {:>9} {:>9}",
        "app", "N", "partitions", "1-GPU", "2-GPU", "3-GPU", "4-GPU"
    );

    let mut final_speedups = vec![Vec::new(); 3]; // index 0 -> 2 GPUs, ...

    // Iterate the spec's own axes so the table can never drift from the grid
    // that actually ran.
    for app_sweep in &spec.apps {
        let app = app_sweep.app;
        for (pos, &n) in app_sweep.n_values.iter().enumerate() {
            let speedups: Vec<f64> = (1..=4usize)
                .map(|gpus| {
                    report
                        .find(app, n, gpus, "ours", None, None)
                        .and_then(|r| r.speedup_vs_1gpu)
                        .expect("every scaling point runs")
                })
                .collect();
            let partitions = report
                .find(app, n, 1, "ours", None, None)
                .expect("1-GPU point exists")
                .partitions;
            println!(
                "{:<12} {:>6} {:>11} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                app.name(),
                n,
                partitions,
                speedups[0],
                speedups[1],
                speedups[2],
                speedups[3]
            );
            if pos + 1 == app_sweep.n_values.len() {
                for (g, s) in final_speedups.iter_mut().zip(&speedups[1..]) {
                    g.push(*s);
                }
            }
        }
    }

    println!();
    println!("average speedup at the largest N (paper: 1.8 / 2.6 / 3.2):");
    for (i, s) in final_speedups.iter().enumerate() {
        println!("  {}-GPU: {:.2}", i + 2, mean(s));
    }
    eprintln!(
        "[sweep: {} points on {} threads in {:.2}s, cache hit rate {:.0}%]",
        report.records.len(),
        report.threads,
        report.wall_clock.as_secs_f64(),
        report.cache.hit_rate() * 100.0
    );
}
