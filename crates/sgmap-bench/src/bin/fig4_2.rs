//! Figure 4.2 — scalability of the proposed mapping technique.
//!
//! For every application and size parameter N, the graph is partitioned once
//! with the proposed heuristic and mapped to 1, 2, 3 and 4 GPUs with the
//! communication-aware ILP. Speedups are reported over the 1-GPU
//! multi-partition mapping, together with the number of partitions (the
//! x-axis annotation of the paper's figure). The paper's headline averages
//! for the largest N are 1.8x / 2.6x / 3.2x for 2 / 3 / 4 GPUs.

use sgmap_apps::App;
use sgmap_bench::{full_sweep_requested, mean, partition_app, run_mapped, sweep, Stack};
use sgmap_gpusim::{GpuSpec, Platform};

fn main() {
    let full = full_sweep_requested();
    let gpu = GpuSpec::m2090();
    println!("# Figure 4.2: speedup over the 1-GPU multi-partition mapping");
    println!(
        "{:<12} {:>6} {:>11} {:>9} {:>9} {:>9} {:>9}",
        "app", "N", "partitions", "1-GPU", "2-GPU", "3-GPU", "4-GPU"
    );

    let mut final_speedups = vec![Vec::new(); 3]; // index 0 -> 2 GPUs, ...
    for app in App::all() {
        let ns = sweep(app, full);
        for (pos, &n) in ns.iter().enumerate() {
            let graph = app.build(n).expect("benchmark graph builds");
            let (estimator, partitioning) = partition_app(&graph, &gpu, Stack::Ours, false);
            let mut times = Vec::new();
            for gpus in 1..=4usize {
                let platform = Platform::homogeneous(gpu.clone(), gpus);
                let r = run_mapped(&graph, &estimator, &partitioning, &platform, Stack::Ours);
                times.push(r.time_per_iteration_us);
            }
            let speedups: Vec<f64> = times.iter().map(|t| times[0] / t).collect();
            println!(
                "{:<12} {:>6} {:>11} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                app.name(),
                n,
                partitioning.len(),
                speedups[0],
                speedups[1],
                speedups[2],
                speedups[3]
            );
            if pos + 1 == ns.len() {
                for (g, s) in final_speedups.iter_mut().zip(&speedups[1..]) {
                    g.push(*s);
                }
            }
        }
    }

    println!();
    println!("average speedup at the largest N (paper: 1.8 / 2.6 / 3.2):");
    for (i, s) in final_speedups.iter().enumerate() {
        println!("  {}-GPU: {:.2}", i + 2, mean(s));
    }
}
