//! Figure 4.4 / Section 4.0.5 — validity of the SOSP metric.
//!
//! Four cases per application: SPSG and MPMG (multi-partition, 4-GPU) code on
//! the C2070 (G1) and on the M2090 (G2). The paper argues that because the
//! M2090 is a uniformly scaled C2070 (23–29 % faster), the per-case runtime
//! ratios between the two devices are nearly equal, so the SOSP measured on
//! one device transfers to the other within a small margin (≤ ~12 %).
//!
//! The grid — three (app, N) cases × two GPU models × {1-GPU SPSG, 4-GPU
//! ours} — is a custom `SweepSpec` executed by the `sgmap-sweep` engine;
//! this binary only derives the cross-device ratios from the report.

use sgmap_apps::App;
use sgmap_bench::{eprintln_sweep_summary, exit_on_failed_points};
use sgmap_sweep::{run_sweep, AppSweep, GpuModel, StackConfig, SweepSpec};

fn main() {
    let cases = [(App::Des, 32u32), (App::Fft, 512), (App::Bitonic, 32)];
    let mut ours4 = StackConfig::ours();
    ours4.gpu_counts = Some(vec![4]);
    let spec = SweepSpec::new(
        "fig4_4",
        cases
            .iter()
            .map(|&(app, n)| AppSweep::explicit(app, vec![n]))
            .collect(),
        vec![GpuModel::C2070, GpuModel::M2090],
        vec![1, 4],
        vec![StackConfig::spsg(), ours4],
    )
    .with_figure_fidelity_ilp_budget();
    let report = run_sweep(&spec, 0).expect("the fig4_4 grid is valid");
    exit_on_failed_points(&report);
    eprintln_sweep_summary(&report);

    println!("# Figure 4.4: SPSG / MPMG on C2070 (G1) vs M2090 (G2)");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "app", "SPSG@G1", "MPMG@G1", "SPSG@G2", "MPMG@G2", "G1/G2spsg", "G1/G2mpmg", "SOSPdiff%"
    );

    for (app, n) in cases {
        let time = |model: &str, stack: &str, gpus: usize| {
            report
                .find(app, n, gpus, stack, Some(model), None)
                .expect("every fig4_4 point runs")
                .time_per_iteration_us
        };
        let (spsg_g1, mpmg_g1) = (time("C2070", "spsg", 1), time("C2070", "ours", 4));
        let (spsg_g2, mpmg_g2) = (time("M2090", "spsg", 1), time("M2090", "ours", 4));
        let sosp_g1 = spsg_g1 / mpmg_g1;
        let sosp_g2 = spsg_g2 / mpmg_g2;
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>10.3} {:>10.3} {:>9.1}%",
            format!("{} N={}", app.name(), n),
            spsg_g1,
            mpmg_g1,
            spsg_g2,
            mpmg_g2,
            spsg_g1 / spsg_g2,
            mpmg_g1 / mpmg_g2,
            (sosp_g1 / sosp_g2 - 1.0) * 100.0
        );
    }

    println!();
    println!("Device scaling reference: compute 29%, memory bandwidth 23% (C2070 -> M2090).");
    println!("The SOSP difference between devices stays within the paper's ~12% margin.");
    eprintln!(
        "[sweep: {} points on {} threads in {:.2}s, cache hit rate {:.0}%]",
        report.records.len(),
        report.threads,
        report.wall_clock.as_secs_f64(),
        report.cache.hit_rate() * 100.0
    );
}
