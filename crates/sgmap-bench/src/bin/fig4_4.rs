//! Figure 4.4 / Section 4.0.5 — validity of the SOSP metric.
//!
//! Four cases per application: SPSG and MPMG (multi-partition, 4-GPU) code on
//! the C2070 (G1) and on the M2090 (G2). The paper argues that because the
//! M2090 is a uniformly scaled C2070 (23–29 % faster), the per-case runtime
//! ratios between the two devices are nearly equal, so the SOSP measured on
//! one device transfers to the other within a small margin (≤ ~12 %).

use sgmap_apps::App;
use sgmap_bench::{partition_app, run_mapped, Stack};
use sgmap_gpusim::{GpuSpec, Platform};

fn main() {
    println!("# Figure 4.4: SPSG / MPMG on C2070 (G1) vs M2090 (G2)");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "app", "SPSG@G1", "MPMG@G1", "SPSG@G2", "MPMG@G2", "G1/G2spsg", "G1/G2mpmg", "SOSPdiff%"
    );

    for (app, n) in [(App::Des, 32), (App::Fft, 512), (App::Bitonic, 32)] {
        let graph = app.build(n).expect("benchmark graph builds");
        let mut results = Vec::new();
        for gpu in [GpuSpec::c2070(), GpuSpec::m2090()] {
            let (spsg_est, spsg_part) = partition_app(&graph, &gpu, Stack::Spsg, false);
            let spsg = run_mapped(
                &graph,
                &spsg_est,
                &spsg_part,
                &Platform::homogeneous(gpu.clone(), 1),
                Stack::Spsg,
            );
            let (our_est, our_part) = partition_app(&graph, &gpu, Stack::Ours, false);
            let mpmg = run_mapped(
                &graph,
                &our_est,
                &our_part,
                &Platform::homogeneous(gpu.clone(), 4),
                Stack::Ours,
            );
            results.push((spsg.time_per_iteration_us, mpmg.time_per_iteration_us));
        }
        let (spsg_g1, mpmg_g1) = results[0];
        let (spsg_g2, mpmg_g2) = results[1];
        let sosp_g1 = spsg_g1 / mpmg_g1;
        let sosp_g2 = spsg_g2 / mpmg_g2;
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>10.3} {:>10.3} {:>9.1}%",
            format!("{} N={}", app.name(), n),
            spsg_g1,
            mpmg_g1,
            spsg_g2,
            mpmg_g2,
            spsg_g1 / spsg_g2,
            mpmg_g1 / mpmg_g2,
            (sosp_g1 / sosp_g2 - 1.0) * 100.0
        );
    }

    println!();
    println!("Device scaling reference: compute 29%, memory bandwidth 23% (C2070 -> M2090).");
    println!("The SOSP difference between devices stays within the paper's ~12% margin.");
}
