//! Criterion benchmarks of the end-to-end flow (compile + simulate) on
//! representative applications, one per table/figure workload class:
//! a compute-bound app (DES), a memory-bound app (Bitonic) and the kernel
//! simulator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use sgmap_apps::App;
use sgmap_codegen::generate_kernel;
use sgmap_core::{compile_and_run, FlowConfig};
use sgmap_gpusim::{simulate_kernel, GpuSpec};
use sgmap_partition::single_partition;
use sgmap_pee::Estimator;

fn bench_end_to_end(c: &mut Criterion) {
    let des = App::Des.build(8).unwrap();
    let bitonic = App::Bitonic.build(16).unwrap();
    let mut group = c.benchmark_group("flow/compile_and_run");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    group.bench_function("des8_2gpu", |b| {
        b.iter(|| compile_and_run(&des, &FlowConfig::default().with_gpu_count(2)).unwrap())
    });
    group.bench_function("bitonic16_2gpu", |b| {
        b.iter(|| compile_and_run(&bitonic, &FlowConfig::default().with_gpu_count(2)).unwrap())
    });
    group.finish();
}

fn bench_kernel_simulation(c: &mut Criterion) {
    let graph = App::Fft.build(64).unwrap();
    let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
    let partition = single_partition(&est);
    let spec = generate_kernel(&est, &partition, "fft64");
    c.bench_function("gpusim/kernel/fft64", |b| {
        b.iter(|| simulate_kernel(&spec, &GpuSpec::m2090(), 7))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_end_to_end, bench_kernel_simulation
}
criterion_main!(benches);
