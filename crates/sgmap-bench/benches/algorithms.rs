//! Criterion micro-benchmarks of the algorithmic kernels of the flow:
//! steady-state rate solving, shared-memory layout, partitioning, the LP/ILP
//! solver and the mapping formulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use sgmap_apps::App;
use sgmap_gpusim::{sm_layout, GpuSpec, Platform};
use sgmap_graph::NodeSet;
use sgmap_ilp::{Model, ObjectiveSense, Solver};
use sgmap_mapping::{map_greedy, map_ilp, MappingOptions};
use sgmap_partition::{build_pdg, PartitionRequest, Pdg, PdgEdge};
use sgmap_pee::Estimator;

fn bench_rates_and_layout(c: &mut Criterion) {
    let graph = App::Bitonic.build(32).unwrap();
    c.bench_function("repetition_vector/bitonic32", |b| {
        b.iter(|| graph.repetition_vector().unwrap())
    });
    let reps = graph.repetition_vector().unwrap();
    let all = NodeSet::all(&graph);
    c.bench_function("sm_footprint/bitonic32", |b| {
        b.iter(|| sm_layout::footprint(&graph, &all, &reps, false))
    });
}

fn bench_partitioning(c: &mut Criterion) {
    let graph = App::FmRadio.build(8).unwrap();
    c.bench_function("partition/proposed/fmradio8", |b| {
        b.iter(|| {
            let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
            PartitionRequest::new(&est).run().unwrap()
        })
    });
}

fn bench_ilp_solver(c: &mut Criterion) {
    c.bench_function("ilp/knapsack12", |b| {
        b.iter(|| {
            let mut m = Model::new(ObjectiveSense::Maximize);
            let items: Vec<_> = (0..12)
                .map(|i| m.add_binary(format!("x{i}"), 1.0 + f64::from(i % 5)))
                .collect();
            m.add_constraint_le(
                items
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, 1.0 + (i % 3) as f64))
                    .collect(),
                9.0,
            );
            Solver::new().solve(&m).unwrap()
        })
    });
}

fn synthetic_pdg() -> Pdg {
    let times: Vec<f64> = (0..12).map(|i| 5.0 + f64::from(i % 4) * 3.0).collect();
    let edges = (0..11)
        .map(|i| PdgEdge {
            from: i,
            to: i + 1,
            bytes_per_iteration: 256 << (i % 4),
        })
        .collect();
    let n = times.len();
    let mut primary_input_bytes = vec![0; n];
    primary_input_bytes[0] = 4096;
    let mut primary_output_bytes = vec![0; n];
    primary_output_bytes[n - 1] = 4096;
    Pdg {
        times_us: times,
        edges,
        primary_input_bytes,
        primary_output_bytes,
    }
}

fn bench_mapping(c: &mut Criterion) {
    let pdg = synthetic_pdg();
    let platform = Platform::quad_m2090();
    c.bench_function("mapping/greedy/12parts", |b| {
        b.iter(|| map_greedy(&pdg, &platform))
    });
    let mut group = c.benchmark_group("mapping/ilp");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("12parts_4gpus", |b| {
        b.iter(|| map_ilp(&pdg, &platform, &MappingOptions::default()).unwrap())
    });
    group.finish();

    // End-to-end PDG construction from a real application.
    let graph = App::Des.build(8).unwrap();
    let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
    let partitioning = PartitionRequest::new(&est).run().unwrap();
    let reps = graph.repetition_vector().unwrap();
    c.bench_function("pdg/build/des8", |b| {
        b.iter(|| build_pdg(&graph, &reps, &partitioning))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_rates_and_layout, bench_partitioning, bench_ilp_solver, bench_mapping
}
criterion_main!(benches);
