//! The `sgmap` facade: the end-to-end compile-map-simulate flow plus the
//! batch experiment-sweep engine.

pub use sgmap_core::*;

/// Batch sweeps over (application, N, GPU count, mapper, ...) grids; see
/// [`sweep::run_sweep`] and the `sgmap-sweep` crate.
pub mod sweep {
    pub use sgmap_sweep::*;
}
