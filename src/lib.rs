pub use sgmap_core::*;
